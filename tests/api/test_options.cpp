// gosh::api::Options — validation, arg/file parsing round-trips, and the
// strict-parsing rejections the seed CLI silently swallowed.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "gosh/api/options.hpp"

namespace gosh::api {
namespace {

/// argv adapter: gtest-owned strings to the char** main() shape.
class Args {
 public:
  explicit Args(std::vector<std::string> args) : storage_(std::move(args)) {
    pointers_.push_back(const_cast<char*>("gosh_embed"));
    for (auto& arg : storage_) pointers_.push_back(arg.data());
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> pointers_;
};

std::string temp_path(const char* name) {
  return testing::TempDir() + name;
}

TEST(Options, DefaultsValidate) {
  Options options;
  EXPECT_TRUE(options.validate().is_ok());
}

TEST(Options, ParseHelpersAcceptAndReject) {
  EXPECT_TRUE(parse_integer("42").ok());
  EXPECT_EQ(parse_integer(" -7 ").value(), -7);
  EXPECT_FALSE(parse_integer("12x").ok());
  EXPECT_FALSE(parse_integer("").ok());
  EXPECT_FALSE(parse_integer("abc").ok());

  EXPECT_EQ(parse_unsigned("17").value(), 17ull);
  EXPECT_FALSE(parse_unsigned("-1").ok());
  // The full uint64 range is legal (a 64-bit seed may use all of it).
  EXPECT_EQ(parse_unsigned("18446744073709551615").value(),
            18446744073709551615ull);

  EXPECT_DOUBLE_EQ(parse_real("0.5").value(), 0.5);
  EXPECT_TRUE(parse_real("1e3").ok());
  EXPECT_FALSE(parse_real("0.5.5").ok());
  EXPECT_FALSE(parse_real("nanx").ok());

  EXPECT_TRUE(parse_bool("true").value());
  EXPECT_FALSE(parse_bool("0").value());
  EXPECT_FALSE(parse_bool("yes").ok());
}

TEST(Options, FromArgsRoundTrip) {
  Args args({"--backend", "largegraph", "--preset", "fast", "--dim", "48",
             "--epochs", "123", "--seed", "7", "--device-mib", "64",
             "--negative-samples", "5", "--eval", "--demo", "--output",
             "out.bin", "--format", "text"});
  auto parsed = Options::from_args(args.argc(), args.argv());
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  const Options& options = parsed.value();
  EXPECT_EQ(options.backend, "largegraph");
  EXPECT_EQ(options.preset, "fast");
  EXPECT_EQ(options.train().dim, 48u);
  EXPECT_EQ(options.gosh.total_epochs, 123u);
  EXPECT_EQ(options.train().seed, 7u);
  EXPECT_EQ(options.train().negative_samples, 5u);
  EXPECT_EQ(options.device.memory_bytes, std::size_t{64} << 20);
  EXPECT_TRUE(options.run_eval);
  EXPECT_TRUE(options.demo);
  EXPECT_EQ(options.output_path, "out.bin");
  EXPECT_EQ(options.output_format, "text");
}

TEST(Options, PresetAppliesBeforeOtherKeysRegardlessOfOrder) {
  // --epochs written BEFORE --preset must still override the preset's
  // budget: preset/large-scale are applied first by construction.
  Args args({"--epochs", "77", "--preset", "slow"});
  auto parsed = Options::from_args(args.argc(), args.argv());
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().gosh.total_epochs, 77u);
  EXPECT_EQ(parsed.value().preset, "slow");
  // And the preset's learning rate did land.
  EXPECT_FLOAT_EQ(parsed.value().train().learning_rate, 0.025f);
}

TEST(Options, LargeScaleSelectsLargeBudgets) {
  Args args({"--preset", "normal", "--large-scale"});
  auto parsed = Options::from_args(args.argc(), args.argv());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().gosh.total_epochs, 200u);  // e_large of Table 3
}

TEST(Options, RejectsValuesTheFieldCannotHold) {
  // 2^32 + 1 must be an error, not dim=1 via silent unsigned truncation.
  Args args({"--dim", "4294967297"});
  auto parsed = Options::from_args(args.argc(), args.argv());
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(Options, RejectsNonNumericDim) {
  Args args({"--dim", "abc"});
  auto parsed = Options::from_args(args.argc(), args.argv());
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(Options, RejectsNegativeSeedInsteadOfWrapping) {
  // The seed tool cast atol(-3) through unsigned, silently producing a
  // huge seed; the facade rejects it.
  Args args({"--seed", "-3"});
  auto parsed = Options::from_args(args.argc(), args.argv());
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(Options, RejectsTrailingJunkAndUnknownFlagsAndMissingValues) {
  {
    Args args({"--dim", "12x"});
    EXPECT_FALSE(Options::from_args(args.argc(), args.argv()).ok());
  }
  {
    Args args({"--frobnicate", "1"});
    EXPECT_FALSE(Options::from_args(args.argc(), args.argv()).ok());
  }
  {
    Args args({"--dim"});
    EXPECT_FALSE(Options::from_args(args.argc(), args.argv()).ok());
  }
  {
    Args args({"stray"});
    EXPECT_FALSE(Options::from_args(args.argc(), args.argv()).ok());
  }
}

TEST(Options, ValidateRejectsOutOfRangeValues) {
  {
    Options options;
    options.gosh.train.dim = 0;
    EXPECT_FALSE(options.validate().is_ok());
  }
  {
    Options options;
    options.gosh.total_epochs = 0;
    EXPECT_FALSE(options.validate().is_ok());
  }
  {
    // p = 0 (fully geometric) is legal — the smoothing ablation sweeps
    // down to it; only values outside [0, 1] are rejected.
    Options options;
    options.gosh.smoothing_ratio = 0.0;
    EXPECT_TRUE(options.validate().is_ok());
    options.gosh.smoothing_ratio = -0.1;
    EXPECT_FALSE(options.validate().is_ok());
    options.gosh.smoothing_ratio = 1.1;
    EXPECT_FALSE(options.validate().is_ok());
  }
  {
    Options options;
    options.output_format = "yaml";
    EXPECT_FALSE(options.validate().is_ok());
  }
  {
    Options options;
    options.gosh.large_graph.pgpu = 1;
    EXPECT_FALSE(options.validate().is_ok());
  }
}

TEST(Options, FromFileRoundTrip) {
  const std::string path = temp_path("gosh_options_roundtrip.conf");
  {
    std::ofstream file(path);
    file << "# GOSH options file\n"
         << "preset = fast\n"
         << "dim = 24      # inline comment\n"
         << "epochs = 50\n"
         << "\n"
         << "backend = verse-cpu\n";
  }
  auto parsed = Options::from_file(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().preset, "fast");
  EXPECT_EQ(parsed.value().train().dim, 24u);
  EXPECT_EQ(parsed.value().gosh.total_epochs, 50u);
  EXPECT_EQ(parsed.value().backend, "verse-cpu");
  std::remove(path.c_str());
}

TEST(Options, FromFileRejectsMalformedLinesAndMissingFiles) {
  EXPECT_EQ(Options::from_file("/nonexistent/gosh.conf").status().code(),
            StatusCode::kIoError);

  const std::string path = temp_path("gosh_options_malformed.conf");
  {
    std::ofstream file(path);
    file << "dim 24\n";  // no '='
  }
  auto parsed = Options::from_file(path);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(Options, ArgsOverrideOptionsFile) {
  const std::string path = temp_path("gosh_options_layered.conf");
  {
    std::ofstream file(path);
    file << "dim = 64\nepochs = 90\n";
  }
  Args args({"--options", path, "--dim", "32"});
  auto parsed = Options::from_args(args.argc(), args.argv());
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().train().dim, 32u);          // CLI wins
  EXPECT_EQ(parsed.value().gosh.total_epochs, 90u);    // file survives
  std::remove(path.c_str());
}

TEST(Options, CliPresetDoesNotClobberExplicitFileKnobs) {
  // A CLI --preset (or --large-scale) is applied BEFORE the file's
  // explicit keys, so epochs=2000 from the file survives the preset reset.
  const std::string path = temp_path("gosh_options_preset_order.conf");
  {
    std::ofstream file(path);
    file << "epochs = 2000\n";
  }
  Args args({"--options", path, "--preset", "fast", "--large-scale"});
  auto parsed = Options::from_args(args.argc(), args.argv());
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().preset, "fast");
  EXPECT_TRUE(parsed.value().large_scale);
  EXPECT_EQ(parsed.value().gosh.total_epochs, 2000u);
  std::remove(path.c_str());
}

TEST(Options, FlagHelpersParseStrictly) {
  Args args({"--scale", "12", "--bad", "12x", "--list", "a,b,c", "--on"});
  EXPECT_EQ(flag_integer(args.argc(), args.argv(), "--scale", 5).value(), 12);
  EXPECT_EQ(flag_integer(args.argc(), args.argv(), "--missing", 5).value(),
            5);
  EXPECT_FALSE(flag_integer(args.argc(), args.argv(), "--bad", 5).ok());
  // A flag as the last token (value forgotten) is diagnosed, not defaulted.
  EXPECT_FALSE(flag_integer(args.argc(), args.argv(), "--on", 5).ok());
  EXPECT_TRUE(flag_present(args.argc(), args.argv(), "--on"));
  EXPECT_FALSE(flag_present(args.argc(), args.argv(), "--off"));
  const auto list = flag_list(args.argc(), args.argv(), "--list", {"z"});
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[1], "b");
  EXPECT_EQ(flag_list(args.argc(), args.argv(), "--none", {"z"}).front(),
            "z");
}

TEST(Options, HelpShortCircuits) {
  Args args({"--help", "--dim", "abc"});  // bad value after --help ignored
  auto parsed = Options::from_args(args.argc(), args.argv());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().show_help);
}

}  // namespace
}  // namespace gosh::api
