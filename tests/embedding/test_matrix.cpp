// EmbeddingMatrix storage, initialization and expansion.
#include <gtest/gtest.h>

#include "gosh/embedding/matrix.hpp"

namespace gosh::embedding {
namespace {

TEST(Matrix, ShapeAndBytes) {
  EmbeddingMatrix m(100, 32);
  EXPECT_EQ(m.rows(), 100u);
  EXPECT_EQ(m.dim(), 32u);
  EXPECT_EQ(m.size(), 3200u);
  EXPECT_EQ(m.bytes(), 3200u * sizeof(emb_t));
  EXPECT_EQ(EmbeddingMatrix::bytes_for(100, 32), m.bytes());
}

TEST(Matrix, ZeroInitializedByDefault) {
  EmbeddingMatrix m(10, 4);
  for (vid_t v = 0; v < 10; ++v) {
    for (float x : m.row(v)) EXPECT_EQ(x, 0.0f);
  }
}

TEST(Matrix, RandomInitWithinScale) {
  EmbeddingMatrix m(1000, 64);
  m.initialize_random(3);
  const float bound = 0.5f / 64.0f;
  bool any_nonzero = false;
  for (vid_t v = 0; v < 1000; ++v) {
    for (float x : m.row(v)) {
      EXPECT_GE(x, -bound);
      EXPECT_LE(x, bound);
      any_nonzero |= x != 0.0f;
    }
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(Matrix, RandomInitDeterministic) {
  EmbeddingMatrix a(50, 16), b(50, 16);
  a.initialize_random(7);
  b.initialize_random(7);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a.data()[i], b.data()[i]);
}

TEST(Matrix, RowsAreContiguousSlices) {
  EmbeddingMatrix m(4, 8);
  m.row(2)[3] = 42.0f;
  EXPECT_EQ(m.data()[2 * 8 + 3], 42.0f);
}

TEST(Expand, CopiesSuperRows) {
  EmbeddingMatrix coarse(2, 3);
  coarse.row(0)[0] = 1.0f;
  coarse.row(1)[0] = 2.0f;
  const std::vector<vid_t> map = {0, 1, 1, 0, 1};
  EmbeddingMatrix fine = expand_embedding(coarse, map);
  EXPECT_EQ(fine.rows(), 5u);
  EXPECT_EQ(fine.dim(), 3u);
  EXPECT_EQ(fine.row(0)[0], 1.0f);
  EXPECT_EQ(fine.row(1)[0], 2.0f);
  EXPECT_EQ(fine.row(2)[0], 2.0f);
  EXPECT_EQ(fine.row(3)[0], 1.0f);
  EXPECT_EQ(fine.row(4)[0], 2.0f);
}

TEST(Expand, IdentityMapPreservesMatrix) {
  EmbeddingMatrix coarse(6, 4);
  coarse.initialize_random(9);
  std::vector<vid_t> identity(6);
  for (vid_t v = 0; v < 6; ++v) identity[v] = v;
  EmbeddingMatrix fine = expand_embedding(coarse, identity);
  for (std::size_t i = 0; i < coarse.size(); ++i) {
    EXPECT_EQ(fine.data()[i], coarse.data()[i]);
  }
}

}  // namespace
}  // namespace gosh::embedding
