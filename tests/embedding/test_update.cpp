// Algorithm 1 update semantics (both rules) and the alias table.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gosh/common/rng.hpp"
#include "gosh/embedding/samplers.hpp"
#include "gosh/embedding/update.hpp"

namespace gosh::embedding {
namespace {

TEST(Dot, MatchesManual) {
  const float a[] = {1.0f, 2.0f, 3.0f};
  const float b[] = {4.0f, -5.0f, 6.0f};
  EXPECT_FLOAT_EQ(dot(a, b, 3), 4.0f - 10.0f + 18.0f);
}

TEST(Update, SimultaneousHandComputed) {
  // v = [1, 0], s = [0, 1]; dot = 0; sigmoid = 0.5.
  // positive: score = (1 - 0.5) * 0.1 = 0.05
  // v' = v + s*score = [1, 0.05]; s' = s + v_old*score = [0.05, 1].
  float v[] = {1.0f, 0.0f};
  float s[] = {0.0f, 1.0f};
  update_embedding<UpdateRule::kSimultaneous>(v, s, 2, 1.0f, 0.1f,
                                              ExactSigmoid{});
  EXPECT_NEAR(v[0], 1.0f, 1e-6f);
  EXPECT_NEAR(v[1], 0.05f, 1e-6f);
  EXPECT_NEAR(s[0], 0.05f, 1e-6f);
  EXPECT_NEAR(s[1], 1.0f, 1e-6f);
}

TEST(Update, PaperSequentialHandComputed) {
  // Same inputs; line 3 sees the updated v:
  // v' = [1, 0.05]; s' = s + v'*score = [0.05, 1 + 0.05*0.05].
  float v[] = {1.0f, 0.0f};
  float s[] = {0.0f, 1.0f};
  update_embedding<UpdateRule::kPaperSequential>(v, s, 2, 1.0f, 0.1f,
                                                 ExactSigmoid{});
  EXPECT_NEAR(v[0], 1.0f, 1e-6f);
  EXPECT_NEAR(v[1], 0.05f, 1e-6f);
  EXPECT_NEAR(s[0], 0.05f, 1e-6f);
  EXPECT_NEAR(s[1], 1.0025f, 1e-6f);
}

TEST(Update, RulesDifferBySecondOrderOnly) {
  float v1[] = {0.3f, -0.2f, 0.5f};
  float s1[] = {0.1f, 0.4f, -0.3f};
  float v2[] = {0.3f, -0.2f, 0.5f};
  float s2[] = {0.1f, 0.4f, -0.3f};
  const float lr = 0.025f;
  update_embedding<UpdateRule::kSimultaneous>(v1, s1, 3, 1.0f, lr,
                                              ExactSigmoid{});
  update_embedding<UpdateRule::kPaperSequential>(v2, s2, 3, 1.0f, lr,
                                                 ExactSigmoid{});
  for (int j = 0; j < 3; ++j) {
    EXPECT_FLOAT_EQ(v1[j], v2[j]);  // source updates are identical
    EXPECT_NEAR(s1[j], s2[j], lr * lr);  // sample differs by O(score^2)
  }
}

TEST(Update, PositivePullsTogether) {
  Rng rng(5);
  std::vector<float> v(16), s(16);
  for (auto& x : v) x = rng.next_float() - 0.5f;
  for (auto& x : s) x = rng.next_float() - 0.5f;
  const float before = dot(v.data(), s.data(), 16);
  for (int iter = 0; iter < 50; ++iter) {
    update_embedding<UpdateRule::kSimultaneous>(v.data(), s.data(), 16, 1.0f,
                                                0.05f, ExactSigmoid{});
  }
  EXPECT_GT(dot(v.data(), s.data(), 16), before);
}

TEST(Update, NegativePushesApart) {
  std::vector<float> v(16, 0.3f), s(16, 0.3f);
  const float before = dot(v.data(), s.data(), 16);
  for (int iter = 0; iter < 50; ++iter) {
    update_embedding<UpdateRule::kSimultaneous>(v.data(), s.data(), 16, 0.0f,
                                                0.05f, ExactSigmoid{});
  }
  EXPECT_LT(dot(v.data(), s.data(), 16), before);
}

TEST(Update, SaturatedPositiveIsNearNoop) {
  // Large positive dot => sigmoid ~ 1 => score ~ 0.
  std::vector<float> v(4, 3.0f), s(4, 3.0f);
  const std::vector<float> v_before = v;
  update_embedding<UpdateRule::kSimultaneous>(v.data(), s.data(), 4, 1.0f,
                                              0.1f, ExactSigmoid{});
  for (int j = 0; j < 4; ++j) EXPECT_NEAR(v[j], v_before[j], 1e-3f);
}

TEST(Update, RuntimeDispatchMatchesTemplates) {
  float a1[] = {0.1f, 0.2f}, b1[] = {0.3f, 0.4f};
  float a2[] = {0.1f, 0.2f}, b2[] = {0.3f, 0.4f};
  update_embedding<UpdateRule::kPaperSequential>(a1, b1, 2, 0.0f, 0.2f,
                                                 ExactSigmoid{});
  update_embedding(a2, b2, 2, 0.0f, 0.2f, ExactSigmoid{},
                   UpdateRule::kPaperSequential);
  EXPECT_FLOAT_EQ(a1[0], a2[0]);
  EXPECT_FLOAT_EQ(b1[1], b2[1]);
}

TEST(AliasTable, UniformWeightsSampleUniformly) {
  std::vector<double> weights(8, 1.0);
  AliasTable table{std::span<const double>(weights)};
  Rng rng(3);
  std::vector<int> counts(8, 0);
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) counts[table.sample(rng)]++;
  for (int c : counts) EXPECT_NEAR(c, kDraws / 8, kDraws / 8 * 0.1);
}

TEST(AliasTable, SkewedWeightsMatchProportions) {
  std::vector<double> weights = {1.0, 2.0, 4.0, 8.0};
  AliasTable table{std::span<const double>(weights)};
  Rng rng(4);
  std::vector<int> counts(4, 0);
  constexpr int kDraws = 150000;
  for (int i = 0; i < kDraws; ++i) counts[table.sample(rng)]++;
  const double total = 15.0;
  for (int i = 0; i < 4; ++i) {
    const double expected = kDraws * weights[i] / total;
    EXPECT_NEAR(counts[i], expected, expected * 0.1) << "bucket " << i;
  }
}

TEST(AliasTable, ZeroWeightNeverSampled) {
  std::vector<double> weights = {0.0, 1.0, 1.0};
  AliasTable table{std::span<const double>(weights)};
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_NE(table.sample(rng), 0u);
}

TEST(AliasTable, RejectsDegenerateInput) {
  std::vector<double> empty;
  EXPECT_THROW(AliasTable{std::span<const double>(empty)},
               std::invalid_argument);
  std::vector<double> zeros(4, 0.0);
  EXPECT_THROW(AliasTable{std::span<const double>(zeros)},
               std::invalid_argument);
}

TEST(AliasTable, ExportRoundTripsBehaviour) {
  std::vector<double> weights = {3.0, 1.0};
  AliasTable table{std::span<const double>(weights)};
  std::vector<float> probability(2);
  std::vector<vid_t> alias(2);
  table.export_arrays(probability, alias);
  // Manual sampling from exported arrays matches proportions.
  Rng rng(6);
  int zero_count = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const vid_t slot = rng.next_vertex(2);
    const vid_t pick =
        rng.next_float() < probability[slot] ? slot : alias[slot];
    zero_count += pick == 0;
  }
  EXPECT_NEAR(zero_count, kDraws * 0.75, kDraws * 0.02);
}

}  // namespace
}  // namespace gosh::embedding
