// Embedding matrix persistence round trips.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "gosh/embedding/io.hpp"

namespace gosh::embedding {
namespace {

class EmbeddingIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per process — ctest -j runs tests concurrently and a shared
    // directory would race with a sibling's TearDown.
    dir_ = std::filesystem::temp_directory_path() /
           ("gosh_emb_io_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

EmbeddingMatrix sample_matrix(vid_t rows = 37, unsigned dim = 9) {
  EmbeddingMatrix m(rows, dim);
  m.initialize_random(5);
  return m;
}

TEST_F(EmbeddingIoTest, BinaryRoundTripExact) {
  const auto original = sample_matrix();
  write_matrix_binary(original, path("m.bin"));
  const auto loaded = read_matrix_binary(path("m.bin"));
  ASSERT_EQ(loaded.rows(), original.rows());
  ASSERT_EQ(loaded.dim(), original.dim());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded.data()[i], original.data()[i]);
  }
}

TEST_F(EmbeddingIoTest, TextRoundTripApproximate) {
  const auto original = sample_matrix(20, 4);
  write_matrix_text(original, path("m.txt"));
  const auto loaded = read_matrix_text(path("m.txt"));
  ASSERT_EQ(loaded.rows(), original.rows());
  ASSERT_EQ(loaded.dim(), original.dim());
  for (vid_t v = 0; v < original.rows(); ++v) {
    for (unsigned j = 0; j < original.dim(); ++j) {
      EXPECT_NEAR(loaded.row(v)[j], original.row(v)[j], 1e-5f);
    }
  }
}

TEST_F(EmbeddingIoTest, TextHeaderIsWord2vecStyle) {
  write_matrix_text(sample_matrix(3, 2), path("h.txt"));
  std::ifstream in(path("h.txt"));
  std::size_t rows = 0, dim = 0;
  in >> rows >> dim;
  EXPECT_EQ(rows, 3u);
  EXPECT_EQ(dim, 2u);
}

TEST_F(EmbeddingIoTest, BinaryRejectsBadMagic) {
  {
    std::ofstream out(path("junk.bin"), std::ios::binary);
    out << "NOPE0000000000000000000000000000";
  }
  EXPECT_THROW(read_matrix_binary(path("junk.bin")), std::runtime_error);
}

TEST_F(EmbeddingIoTest, BinaryRejectsTruncated) {
  write_matrix_binary(sample_matrix(), path("t.bin"));
  std::filesystem::resize_file(
      path("t.bin"), std::filesystem::file_size(path("t.bin")) / 2);
  EXPECT_THROW(read_matrix_binary(path("t.bin")), std::runtime_error);
}

TEST_F(EmbeddingIoTest, TextRejectsDuplicateVertex) {
  {
    std::ofstream out(path("dup.txt"));
    out << "2 2\n0 1.0 2.0\n0 3.0 4.0\n";
  }
  EXPECT_THROW(read_matrix_text(path("dup.txt")), std::runtime_error);
}

TEST_F(EmbeddingIoTest, TextRejectsOutOfRangeVertex) {
  {
    std::ofstream out(path("oob.txt"));
    out << "2 2\n0 1.0 2.0\n7 3.0 4.0\n";
  }
  EXPECT_THROW(read_matrix_text(path("oob.txt")), std::runtime_error);
}

TEST_F(EmbeddingIoTest, MissingFilesThrow) {
  EXPECT_THROW(read_matrix_text(path("nope.txt")), std::runtime_error);
  EXPECT_THROW(read_matrix_binary(path("nope.bin")), std::runtime_error);
}

}  // namespace
}  // namespace gosh::embedding
