// Epoch distribution (smoothing ratio p) and learning-rate decay.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <tuple>

#include "gosh/embedding/schedule.hpp"

namespace gosh::embedding {
namespace {

unsigned sum(const std::vector<unsigned>& v) {
  return std::accumulate(v.begin(), v.end(), 0u);
}

TEST(Schedule, SingleLevelGetsEverything) {
  const auto epochs = distribute_epochs(1000, 1, 0.3);
  ASSERT_EQ(epochs.size(), 1u);
  EXPECT_EQ(epochs[0], 1000u);
}

TEST(Schedule, SumEqualsBudget) {
  const auto epochs = distribute_epochs(1000, 6, 0.3);
  EXPECT_EQ(sum(epochs), 1000u);
}

TEST(Schedule, UniformWhenPIsOne) {
  const auto epochs = distribute_epochs(600, 6, 1.0);
  for (unsigned e : epochs) EXPECT_EQ(e, 100u);
}

TEST(Schedule, CoarserLevelsGetMoreWhenPIsSmall) {
  const auto epochs = distribute_epochs(1000, 5, 0.1);
  // Level i+1 (coarser) must get at least as much as level i.
  for (std::size_t i = 0; i + 1 < epochs.size(); ++i) {
    EXPECT_LE(epochs[i], epochs[i + 1]);
  }
  // The geometric component roughly doubles per level.
  EXPECT_GT(epochs[4], 3u * epochs[3] / 2);
}

TEST(Schedule, EveryLevelGetsAtLeastOne) {
  const auto epochs = distribute_epochs(4, 10, 0.0);
  for (unsigned e : epochs) EXPECT_GE(e, 1u);
  EXPECT_EQ(sum(epochs), 10u);  // budget lifted to the level count
}

TEST(Schedule, ZeroSmoothingIsFullyGeometric) {
  const auto epochs = distribute_epochs(1024, 4, 0.0);
  // Shares ~ [128, 256, 512, ... drift-corrected coarsest].
  EXPECT_NEAR(static_cast<double>(epochs[1]) / epochs[0], 2.0, 0.2);
  EXPECT_NEAR(static_cast<double>(epochs[2]) / epochs[1], 2.0, 0.2);
}

class ScheduleSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, std::size_t, double>> {
};

TEST_P(ScheduleSweep, InvariantsHoldAcrossGrid) {
  const auto [e, d, p] = GetParam();
  const auto epochs = distribute_epochs(e, d, p);
  ASSERT_EQ(epochs.size(), d);
  EXPECT_EQ(sum(epochs), std::max<unsigned>(e, static_cast<unsigned>(d)));
  for (unsigned per_level : epochs) EXPECT_GE(per_level, 1u);
  for (std::size_t i = 0; i + 1 < d; ++i) {
    EXPECT_LE(epochs[i], epochs[i + 1] + 1);  // coarser >= finer (rounding)
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ScheduleSweep,
    ::testing::Combine(::testing::Values(10u, 100u, 600u, 1000u, 1400u),
                       ::testing::Values<std::size_t>(1, 2, 5, 8, 12),
                       ::testing::Values(0.0, 0.1, 0.3, 0.5, 1.0)));

TEST(Schedule, TightBudgetsNeverEmitZeroEpochLevels) {
  // Budgets barely above the level count are where the lift-empty-levels
  // pass used to steal a donor down to zero; every (e, d, p) cell must
  // still give each level >= 1 epoch and conserve the budget.
  for (std::size_t d = 2; d <= 12; ++d) {
    for (unsigned e = static_cast<unsigned>(d) + 1;
         e <= static_cast<unsigned>(d) + 8; ++e) {
      for (const double p : {0.0, 0.1, 0.3, 1.0}) {
        const auto epochs = distribute_epochs(e, d, p);
        ASSERT_EQ(epochs.size(), d);
        EXPECT_EQ(sum(epochs), e) << "e=" << e << " d=" << d << " p=" << p;
        for (unsigned per_level : epochs) {
          EXPECT_GE(per_level, 1u) << "e=" << e << " d=" << d << " p=" << p;
        }
      }
    }
  }
}

TEST(EpochsToPasses, ScalesByDensity) {
  // One epoch = |E| samples = |E|/|V| passes (Section 4.3).
  EXPECT_EQ(epochs_to_passes(100, 1000, 100), 1000u);  // density 10
  EXPECT_EQ(epochs_to_passes(10, 500, 1000), 5u);      // density 0.5
}

TEST(EpochsToPasses, NeverBelowOne) {
  EXPECT_EQ(epochs_to_passes(1, 1, 1000000), 1u);
  EXPECT_EQ(epochs_to_passes(0, 100, 10), 1u);
}

TEST(EpochsToPasses, EmptyGraphPassesThrough) {
  EXPECT_EQ(epochs_to_passes(7, 0, 0), 7u);
}

TEST(EpochsToPasses, RoundsToNearest) {
  // density 1.5: 3 epochs -> 4.5 -> 5 passes (llround).
  EXPECT_EQ(epochs_to_passes(3, 15, 10), 5u);
}

TEST(LearningRate, StartsAtBaseAndDecays) {
  EXPECT_FLOAT_EQ(decayed_learning_rate(0.05f, 0, 100), 0.05f);
  EXPECT_NEAR(decayed_learning_rate(0.05f, 50, 100), 0.025f, 1e-6f);
}

TEST(LearningRate, FloorsAtTenThousandth) {
  EXPECT_FLOAT_EQ(decayed_learning_rate(0.05f, 100, 100), 0.05f * 1e-4f);
  EXPECT_FLOAT_EQ(decayed_learning_rate(0.05f, 1000, 100), 0.05f * 1e-4f);
}

TEST(LearningRate, ZeroEpochScheduleFallsBackToBase) {
  // level_epochs = 0 used to divide 0/0 and return NaN through max().
  EXPECT_FLOAT_EQ(decayed_learning_rate(0.05f, 0, 0), 0.05f);
  EXPECT_FLOAT_EQ(decayed_learning_rate(0.05f, 7, 0), 0.05f);
  EXPECT_TRUE(std::isfinite(decayed_learning_rate(0.05f, 0, 0)));
}

TEST(LearningRate, MonotoneNonincreasing) {
  float previous = 1.0f;
  for (unsigned j = 0; j < 200; ++j) {
    const float lr = decayed_learning_rate(0.025f, j, 150);
    EXPECT_LE(lr, previous);
    previous = lr;
  }
}

}  // namespace
}  // namespace gosh::embedding
