// DeviceGraph and sampling distributions.
#include <gtest/gtest.h>

#include <map>

#include "gosh/embedding/samplers.hpp"
#include "gosh/graph/builder.hpp"
#include "gosh/graph/generators.hpp"

namespace gosh::embedding {
namespace {

simt::DeviceConfig device_config() {
  simt::DeviceConfig config;
  config.memory_bytes = 64u << 20;
  config.workers = 1;
  return config;
}

TEST(DeviceGraph, UploadsCsrFaithfully) {
  const auto g = graph::rmat(8, 600, 3);
  simt::Device device(device_config());
  DeviceGraph device_graph(device, g);
  EXPECT_EQ(device_graph.num_vertices(), g.num_vertices());
  EXPECT_EQ(device_graph.num_arcs(), g.num_arcs());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(device_graph.xadj()[v], g.xadj()[v]);
  }
  for (eid_t i = 0; i < g.num_arcs(); ++i) {
    EXPECT_EQ(device_graph.adj()[i], g.adj()[i]);
  }
}

TEST(DeviceGraph, RequiredBytesMatchesLayout) {
  const auto g = graph::cycle_graph(100);
  EXPECT_EQ(DeviceGraph::required_bytes(g),
            101 * sizeof(eid_t) + 200 * sizeof(vid_t));
}

TEST(DeviceGraph, PositiveSamplesAreNeighbors) {
  const auto g = graph::rmat(8, 600, 4);
  simt::Device device(device_config());
  DeviceGraph device_graph(device, g);
  Rng rng(1);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    for (int draw = 0; draw < 5; ++draw) {
      const vid_t u = device_graph.positive_sample(v, rng);
      if (g.degree(v) == 0) {
        EXPECT_EQ(u, kInvalidVertex);
      } else {
        const auto nb = g.neighbors(v);
        EXPECT_TRUE(std::find(nb.begin(), nb.end(), u) != nb.end());
      }
    }
  }
}

TEST(DeviceGraph, PositiveSamplingIsUniformOverNeighbors) {
  // Star center: 20 leaves, each should be drawn ~1/20 of the time.
  const auto g = graph::star_graph(21);
  simt::Device device(device_config());
  DeviceGraph device_graph(device, g);
  Rng rng(2);
  std::map<vid_t, int> counts;
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) {
    counts[device_graph.positive_sample(0, rng)]++;
  }
  EXPECT_EQ(counts.size(), 20u);
  for (const auto& [leaf, count] : counts) {
    EXPECT_NEAR(count, kDraws / 20, kDraws / 20 * 0.15) << "leaf " << leaf;
  }
}

TEST(DeviceGraph, PprSampleStaysInComponentAndSkipsIsolated) {
  // Two components: a triangle {0,1,2} and an isolated vertex 3.
  const auto g = graph::build_csr(4, {{0, 1}, {1, 2}, {2, 0}});
  simt::Device device(device_config());
  DeviceGraph device_graph(device, g);
  Rng rng(9);
  for (int draw = 0; draw < 200; ++draw) {
    const vid_t u = device_graph.ppr_sample(0, 0.85f, rng);
    ASSERT_NE(u, kInvalidVertex);
    EXPECT_LT(u, 3u);  // never escapes the triangle
  }
  EXPECT_EQ(device_graph.ppr_sample(3, 0.85f, rng), kInvalidVertex);
}

TEST(DeviceGraph, PprAlphaControlsWalkLength) {
  // On a path, low alpha keeps samples near the start; high alpha ranges
  // further. Compare mean distance from the source.
  const auto g = graph::path_graph(64);
  simt::Device device(device_config());
  DeviceGraph device_graph(device, g);
  auto mean_distance = [&](float alpha) {
    Rng rng(10);
    double total = 0.0;
    constexpr int kDraws = 3000;
    for (int i = 0; i < kDraws; ++i) {
      const vid_t u = device_graph.ppr_sample(0, alpha, rng);
      total += u;  // path ids equal distance from vertex 0
    }
    return total / kDraws;
  };
  EXPECT_LT(mean_distance(0.2f), mean_distance(0.9f));
}

TEST(NegativeSample, CoversVertexRange) {
  Rng rng(3);
  std::map<vid_t, int> counts;
  for (int i = 0; i < 50000; ++i) counts[negative_sample(5, rng)]++;
  EXPECT_EQ(counts.size(), 5u);
  for (const auto& [v, count] : counts) {
    EXPECT_NEAR(count, 10000, 1000) << "vertex " << v;
  }
}

}  // namespace
}  // namespace gosh::embedding
