// DeviceTrainer (Algorithm 3): structural behaviour and embedding quality.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "gosh/embedding/trainer.hpp"
#include "gosh/graph/builder.hpp"
#include "gosh/graph/generators.hpp"

namespace gosh::embedding {
namespace {

simt::DeviceConfig test_device_config() {
  simt::DeviceConfig config;
  config.memory_bytes = 64u << 20;
  config.workers = 2;
  return config;
}

/// Two 8-cliques bridged by a single edge — the canonical "communities"
/// fixture: a good embedding separates the cliques.
graph::Graph two_cliques(vid_t clique = 8) {
  std::vector<graph::Edge> edges;
  for (vid_t u = 0; u < clique; ++u) {
    for (vid_t v = u + 1; v < clique; ++v) {
      edges.emplace_back(u, v);
      edges.emplace_back(clique + u, clique + v);
    }
  }
  edges.emplace_back(0, clique);  // bridge
  return graph::build_csr(2 * clique, std::move(edges));
}

float mean_intra_minus_inter(const EmbeddingMatrix& m, vid_t clique) {
  float intra = 0.0f, inter = 0.0f;
  int intra_count = 0, inter_count = 0;
  for (vid_t u = 0; u < 2 * clique; ++u) {
    for (vid_t v = u + 1; v < 2 * clique; ++v) {
      const float d = dot(m.row(u).data(), m.row(v).data(), m.dim());
      if ((u < clique) == (v < clique)) {
        intra += d;
        intra_count++;
      } else {
        inter += d;
        inter_count++;
      }
    }
  }
  return intra / intra_count - inter / inter_count;
}

TEST(LanesPerVertex, MatchesSection311) {
  EXPECT_EQ(lanes_per_vertex(8, true), 8u);
  EXPECT_EQ(lanes_per_vertex(16, true), 16u);
  EXPECT_EQ(lanes_per_vertex(12, true), 16u);
  EXPECT_EQ(lanes_per_vertex(32, true), 32u);
  EXPECT_EQ(lanes_per_vertex(128, true), 32u);  // capped at warp width
  EXPECT_EQ(lanes_per_vertex(8, false), 32u);   // packing disabled
}

TEST(Trainer, ChangesTheMatrix) {
  simt::Device device(test_device_config());
  const auto g = two_cliques();
  TrainConfig config;
  config.dim = 16;
  EmbeddingMatrix m(g.num_vertices(), config.dim);
  m.initialize_random(1);
  const std::vector<emb_t> before(m.data(), m.data() + m.size());
  DeviceTrainer trainer(device, g, config);
  trainer.train(m, 5);
  bool changed = false;
  for (std::size_t i = 0; i < m.size(); ++i) changed |= m.data()[i] != before[i];
  EXPECT_TRUE(changed);
}

TEST(Trainer, LearnsCommunityStructure) {
  simt::Device device(test_device_config());
  const auto g = two_cliques();
  TrainConfig config;
  config.dim = 16;
  config.learning_rate = 0.05f;
  EmbeddingMatrix m(g.num_vertices(), config.dim);
  m.initialize_random(2);
  DeviceTrainer trainer(device, g, config);
  trainer.train(m, 300);
  EXPECT_GT(mean_intra_minus_inter(m, 8), 0.1f);
}

TEST(Trainer, SingleWorkerIsDeterministic) {
  simt::DeviceConfig config = test_device_config();
  config.workers = 1;
  const auto g = two_cliques();
  TrainConfig train;
  train.dim = 8;
  auto run = [&] {
    simt::Device device(config);
    EmbeddingMatrix m(g.num_vertices(), train.dim);
    m.initialize_random(3);
    DeviceTrainer trainer(device, g, train);
    trainer.train(m, 20);
    return std::vector<emb_t>(m.data(), m.data() + m.size());
  };
  EXPECT_EQ(run(), run());
}

TEST(Trainer, IsolatedVerticesSurvive) {
  // Vertices with no neighbours get no positive updates but must not
  // corrupt the run.
  graph::Graph g = graph::build_csr(10, {{0, 1}});
  simt::Device device(test_device_config());
  TrainConfig config;
  config.dim = 8;
  EmbeddingMatrix m(10, 8);
  m.initialize_random(4);
  DeviceTrainer trainer(device, g, config);
  trainer.train(m, 10);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_TRUE(std::isfinite(m.data()[i]));
  }
}

class SmallDimTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SmallDimTest, PackedQualityMatchesUnpacked) {
  const unsigned d = GetParam();
  const auto g = two_cliques();
  auto quality = [&](bool packed) {
    simt::Device device(test_device_config());
    TrainConfig config;
    config.dim = d;
    config.small_dim_packing = packed;
    config.learning_rate = 0.05f;
    EmbeddingMatrix m(g.num_vertices(), d);
    m.initialize_random(5);
    DeviceTrainer trainer(device, g, config);
    trainer.train(m, 300);
    return mean_intra_minus_inter(m, 8);
  };
  const float packed = quality(true);
  const float unpacked = quality(false);
  EXPECT_GT(packed, 0.05f);
  EXPECT_GT(unpacked, 0.05f);
}

INSTANTIATE_TEST_SUITE_P(Dims, SmallDimTest, ::testing::Values(8u, 16u));

TEST(Trainer, NaiveKernelStillLearns) {
  simt::Device device(test_device_config());
  const auto g = two_cliques();
  TrainConfig config;
  config.dim = 16;
  config.naive_kernel = true;
  config.learning_rate = 0.05f;
  EmbeddingMatrix m(g.num_vertices(), config.dim);
  m.initialize_random(6);
  DeviceTrainer trainer(device, g, config);
  trainer.train(m, 300);
  EXPECT_GT(mean_intra_minus_inter(m, 8), 0.1f);
}

TEST(Trainer, PprSamplingLearnsCommunities) {
  // VERSE's PPR similarity on the device trainer (the generality the
  // paper inherits from VERSE, Section 2).
  simt::Device device(test_device_config());
  const auto g = two_cliques();
  TrainConfig config;
  config.dim = 16;
  config.positive_sampling = PositiveSampling::kPpr;
  config.learning_rate = 0.05f;
  EmbeddingMatrix m(g.num_vertices(), config.dim);
  m.initialize_random(11);
  DeviceTrainer trainer(device, g, config);
  trainer.train(m, 300);
  EXPECT_GT(mean_intra_minus_inter(m, 8), 0.05f);
}

TEST(Trainer, ExactSigmoidPathWorks) {
  simt::Device device(test_device_config());
  const auto g = two_cliques();
  TrainConfig config;
  config.dim = 16;
  config.use_sigmoid_lut = false;
  config.learning_rate = 0.05f;
  EmbeddingMatrix m(g.num_vertices(), config.dim);
  m.initialize_random(7);
  DeviceTrainer trainer(device, g, config);
  trainer.train(m, 300);
  EXPECT_GT(mean_intra_minus_inter(m, 8), 0.1f);
}

TEST(Trainer, SelfNegativesLeaveLoneVertexUntouched) {
  // A one-vertex graph has no positives and every negative is the source
  // itself. Self-negatives must be skipped: in the staged kernel they
  // would update the stale global row only for the writeback to clobber
  // it, so the row must come back bit-identical in both kernel variants.
  graph::Graph g = graph::build_csr(1, std::vector<graph::Edge>{});
  for (const bool naive : {false, true}) {
    simt::Device device(test_device_config());
    TrainConfig config;
    config.dim = 8;
    config.naive_kernel = naive;
    EmbeddingMatrix m(1, 8);
    m.initialize_random(10);
    const std::vector<emb_t> before(m.data(), m.data() + m.size());
    DeviceTrainer trainer(device, g, config);
    trainer.train(m, 20);
    for (std::size_t i = 0; i < m.size(); ++i) {
      EXPECT_EQ(m.data()[i], before[i]) << (naive ? "naive" : "staged");
    }
  }
}

TEST(Trainer, StagedKernelMatchesNaiveKernelExactly) {
  // With one worker the two kernel variants walk identical update
  // sequences; the only historical divergence was the self-negative whose
  // sample-side update the staged writeback silently dropped. 16 vertices
  // x 3 negatives x 50 epochs makes such draws certain.
  simt::DeviceConfig device_config = test_device_config();
  device_config.workers = 1;
  const auto g = two_cliques();
  auto run = [&](bool naive) {
    simt::Device device(device_config);
    TrainConfig config;
    config.dim = 32;  // one vertex per warp in both variants
    config.naive_kernel = naive;
    EmbeddingMatrix m(g.num_vertices(), config.dim);
    m.initialize_random(12);
    DeviceTrainer trainer(device, g, config);
    trainer.train(m, 50);
    return std::vector<emb_t>(m.data(), m.data() + m.size());
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(Trainer, RejectsMismatchedMatrixShape) {
  simt::Device device(test_device_config());
  const auto g = two_cliques();
  TrainConfig config;
  config.dim = 16;
  DeviceTrainer trainer(device, g, config);
  EmbeddingMatrix wrong_rows(g.num_vertices() + 1, 16);
  wrong_rows.initialize_random(13);
  EXPECT_THROW(trainer.train(wrong_rows, 5), std::invalid_argument);
  EmbeddingMatrix wrong_dim(g.num_vertices(), 8);
  wrong_dim.initialize_random(14);
  EXPECT_THROW(trainer.train(wrong_dim, 5), std::invalid_argument);
}

TEST(Trainer, RejectsZeroEpochSchedules) {
  // epochs = 0 and lr_total = 0 used to reach decayed_learning_rate as
  // 0/0 and train on NaN; both are invalid arguments now.
  simt::Device device(test_device_config());
  const auto g = two_cliques();
  TrainConfig config;
  config.dim = 16;
  DeviceTrainer trainer(device, g, config);
  EmbeddingMatrix m(g.num_vertices(), 16);
  m.initialize_random(15);
  EXPECT_THROW(trainer.train(m, 0), std::invalid_argument);
  EXPECT_THROW(trainer.train(m, 5, /*lr_offset=*/0, /*lr_total=*/0),
               std::invalid_argument);
}

TEST(Trainer, AccountsDeviceTraffic) {
  simt::Device device(test_device_config());
  const auto g = two_cliques();
  device.metrics().reset();
  TrainConfig config;
  config.dim = 16;
  EmbeddingMatrix m(g.num_vertices(), config.dim);
  m.initialize_random(8);
  DeviceTrainer trainer(device, g, config);
  trainer.train(m, 3);
  const auto snap = device.metrics().snapshot();
  EXPECT_GT(snap.h2d_bytes, m.bytes());      // matrix + CSR uploads
  EXPECT_GE(snap.d2h_bytes, m.bytes());      // final download
  EXPECT_EQ(snap.kernels_launched, 3u);      // one per epoch
  EXPECT_GT(snap.shared_accesses, 0u);
  EXPECT_GT(snap.global_accesses, 0u);
}

TEST(Trainer, GraphTooBigForDeviceThrows) {
  simt::DeviceConfig config;
  config.memory_bytes = 1024;  // tiny device
  config.workers = 1;
  simt::Device device(config);
  const auto g = graph::erdos_renyi(1000, 5000, 9);
  TrainConfig train;
  EXPECT_THROW(DeviceTrainer(device, g, train), simt::DeviceOutOfMemory);
}

}  // namespace
}  // namespace gosh::embedding
