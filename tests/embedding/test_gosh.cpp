// The Algorithm 2 driver behind the gosh::api facade: presets, level
// reports, both training paths.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gosh/api/api.hpp"

namespace gosh {
namespace {

api::Options device_options(std::size_t bytes = 64u << 20) {
  api::Options options;
  options.backend = "device";
  options.device.memory_bytes = bytes;
  options.device.workers = 2;
  return options;
}

api::EmbedResult must_embed(const graph::Graph& g,
                            const api::Options& options) {
  auto result = api::embed(g, options);
  EXPECT_TRUE(result.ok()) << result.status().to_string();
  return std::move(result).value();
}

TEST(Presets, MatchTable3) {
  const auto preset = [](const char* name, bool large_scale = false) {
    api::Options options;
    if (large_scale) {
      EXPECT_TRUE(options.set("large-scale", "true").is_ok());
    }
    EXPECT_TRUE(options.set("preset", name).is_ok());
    return options;
  };

  EXPECT_DOUBLE_EQ(preset("fast").gosh.smoothing_ratio, 0.1);
  EXPECT_FLOAT_EQ(preset("fast").train().learning_rate, 0.050f);
  EXPECT_EQ(preset("fast").gosh.total_epochs, 600u);
  EXPECT_EQ(preset("fast", true).gosh.total_epochs, 100u);

  EXPECT_DOUBLE_EQ(preset("normal").gosh.smoothing_ratio, 0.3);
  EXPECT_FLOAT_EQ(preset("normal").train().learning_rate, 0.035f);
  EXPECT_EQ(preset("normal").gosh.total_epochs, 1000u);
  EXPECT_EQ(preset("normal", true).gosh.total_epochs, 200u);

  EXPECT_DOUBLE_EQ(preset("slow").gosh.smoothing_ratio, 0.5);
  EXPECT_FLOAT_EQ(preset("slow").train().learning_rate, 0.025f);
  EXPECT_EQ(preset("slow").gosh.total_epochs, 1400u);
  EXPECT_EQ(preset("slow", true).gosh.total_epochs, 300u);

  EXPECT_FALSE(preset("nocoarse").gosh.enable_coarsening);
  EXPECT_FLOAT_EQ(preset("nocoarse").train().learning_rate, 0.045f);
}

TEST(GoshEmbed, ProducesFullSizeEmbedding) {
  const auto g = graph::rmat(10, 4000, 21);
  api::Options options = device_options();
  ASSERT_TRUE(options.set("preset", "fast").is_ok());
  options.train().dim = 16;
  options.gosh.total_epochs = 50;
  const auto result = must_embed(g, options);
  EXPECT_EQ(result.embedding.rows(), g.num_vertices());
  EXPECT_EQ(result.embedding.dim(), 16u);
  for (std::size_t i = 0; i < result.embedding.size(); ++i) {
    EXPECT_TRUE(std::isfinite(result.embedding.data()[i]));
  }
}

TEST(GoshEmbed, ReportsLevels) {
  const auto g = graph::rmat(11, 8000, 22);
  api::Options options = device_options();
  options.train().dim = 16;
  options.gosh.total_epochs = 60;
  const auto result = must_embed(g, options);
  ASSERT_GT(result.levels.size(), 1u);
  // Level 0 is the original graph; deeper levels shrink.
  EXPECT_EQ(result.levels[0].vertices, g.num_vertices());
  for (std::size_t i = 0; i + 1 < result.levels.size(); ++i) {
    EXPECT_GT(result.levels[i].vertices, result.levels[i + 1].vertices);
    EXPECT_GT(result.levels[i].epochs, 0u);
  }
  EXPECT_GT(result.coarsening_seconds, 0.0);
  EXPECT_GT(result.training_seconds, 0.0);
}

TEST(GoshEmbed, NoCoarseningUsesSingleLevel) {
  const auto g = graph::rmat(9, 2000, 23);
  api::Options options = device_options();
  ASSERT_TRUE(options.set("preset", "nocoarse").is_ok());
  options.train().dim = 8;
  options.gosh.total_epochs = 20;
  const auto result = must_embed(g, options);
  EXPECT_EQ(result.levels.size(), 1u);
  EXPECT_EQ(result.levels[0].epochs, 20u);
}

TEST(GoshEmbed, EdgeEpochsConvertToDensityScaledPasses) {
  const auto g = graph::rmat(9, 2000, 25);
  api::Options options = device_options();
  ASSERT_TRUE(options.set("preset", "nocoarse").is_ok());
  options.train().dim = 8;
  options.gosh.total_epochs = 10;
  const auto with_conversion = must_embed(g, options);
  const unsigned expected = embedding::epochs_to_passes(
      10, g.num_edges_undirected(), g.num_vertices());
  EXPECT_EQ(with_conversion.levels[0].passes, expected);

  options.gosh.edge_epochs = false;
  const auto raw = must_embed(g, options);
  EXPECT_EQ(raw.levels[0].passes, 10u);
}

TEST(GoshEmbed, FallsBackToLargeGraphPath) {
  // A device too small for graph+matrix must route through Algorithm 5 —
  // at least for the original (largest) level, while the deep-coarsened
  // levels fit and use the resident path.
  graph::LfrParams params;
  params.average_degree = 10.0;
  params.communities = 32;
  const auto g = graph::lfr_like(2048, params, 24);
  api::Options options = device_options(192u << 10);
  ASSERT_TRUE(options.set("preset", "fast").is_ok());
  options.train().dim = 32;  // matrix = 2048*32*4 = 256 KiB > device
  options.gosh.total_epochs = 30;
  const auto result = must_embed(g, options);
  EXPECT_TRUE(result.levels[0].used_large_graph_path);
  EXPECT_GT(result.levels[0].partitions, 1u);
  EXPECT_GT(result.levels[0].rotations, 0u);
  EXPECT_FALSE(result.levels.back().used_large_graph_path);
  EXPECT_EQ(result.levels.back().partitions, 0u);
  for (std::size_t i = 0; i < result.embedding.size(); ++i) {
    EXPECT_TRUE(std::isfinite(result.embedding.data()[i]));
  }
}

TEST(GoshEmbed, CoarseningImprovesSmallBudgetQuality) {
  // The paper's Table 6 story in miniature: with a small epoch budget,
  // multilevel training reaches structure a flat run misses. We check
  // both run and produce finite embeddings and coarsened is not worse by
  // an order of magnitude in community separation.
  const vid_t clique = 8;
  std::vector<graph::Edge> edges;
  for (vid_t u = 0; u < clique; ++u) {
    for (vid_t v = u + 1; v < clique; ++v) {
      edges.emplace_back(u, v);
      edges.emplace_back(clique + u, clique + v);
    }
  }
  edges.emplace_back(0, clique);
  const auto g = graph::build_csr(2 * clique, std::move(edges));

  auto separation = [&](bool coarsen) {
    api::Options options = device_options();
    if (!coarsen) {
      EXPECT_TRUE(options.set("preset", "nocoarse").is_ok());
    }
    options.train().dim = 16;
    options.train().learning_rate = 0.05f;
    options.gosh.total_epochs = 400;
    options.gosh.coarsening.threshold = 4;
    const auto result = must_embed(g, options);
    float intra = 0.0f, inter = 0.0f;
    int intra_n = 0, inter_n = 0;
    for (vid_t u = 0; u < 2 * clique; ++u) {
      for (vid_t v = u + 1; v < 2 * clique; ++v) {
        const float d = embedding::dot(result.embedding.row(u).data(),
                                       result.embedding.row(v).data(), 16);
        if ((u < clique) == (v < clique)) {
          intra += d;
          intra_n++;
        } else {
          inter += d;
          inter_n++;
        }
      }
    }
    return intra / intra_n - inter / inter_n;
  };
  EXPECT_GT(separation(true), 0.05f);
  EXPECT_GT(separation(false), 0.05f);
}

}  // namespace
}  // namespace gosh
