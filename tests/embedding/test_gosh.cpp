// The Algorithm 2 driver: presets, level reports, both training paths.
#include <gtest/gtest.h>

#include <cmath>

#include "gosh/embedding/gosh.hpp"
#include "gosh/embedding/schedule.hpp"
#include "gosh/graph/builder.hpp"
#include "gosh/graph/generators.hpp"

namespace gosh::embedding {
namespace {

simt::DeviceConfig device_config(std::size_t bytes = 64u << 20) {
  simt::DeviceConfig config;
  config.memory_bytes = bytes;
  config.workers = 2;
  return config;
}

TEST(Presets, MatchTable3) {
  EXPECT_DOUBLE_EQ(gosh_fast().smoothing_ratio, 0.1);
  EXPECT_FLOAT_EQ(gosh_fast().train.learning_rate, 0.050f);
  EXPECT_EQ(gosh_fast().total_epochs, 600u);
  EXPECT_EQ(gosh_fast(true).total_epochs, 100u);

  EXPECT_DOUBLE_EQ(gosh_normal().smoothing_ratio, 0.3);
  EXPECT_FLOAT_EQ(gosh_normal().train.learning_rate, 0.035f);
  EXPECT_EQ(gosh_normal().total_epochs, 1000u);
  EXPECT_EQ(gosh_normal(true).total_epochs, 200u);

  EXPECT_DOUBLE_EQ(gosh_slow().smoothing_ratio, 0.5);
  EXPECT_FLOAT_EQ(gosh_slow().train.learning_rate, 0.025f);
  EXPECT_EQ(gosh_slow().total_epochs, 1400u);
  EXPECT_EQ(gosh_slow(true).total_epochs, 300u);

  EXPECT_FALSE(gosh_no_coarsening().enable_coarsening);
  EXPECT_FLOAT_EQ(gosh_no_coarsening().train.learning_rate, 0.045f);
}

TEST(GoshEmbed, ProducesFullSizeEmbedding) {
  simt::Device device(device_config());
  const auto g = graph::rmat(10, 4000, 21);
  GoshConfig config = gosh_fast();
  config.train.dim = 16;
  config.total_epochs = 50;
  const auto result = gosh_embed(g, device, config);
  EXPECT_EQ(result.embedding.rows(), g.num_vertices());
  EXPECT_EQ(result.embedding.dim(), 16u);
  for (std::size_t i = 0; i < result.embedding.size(); ++i) {
    EXPECT_TRUE(std::isfinite(result.embedding.data()[i]));
  }
}

TEST(GoshEmbed, ReportsLevels) {
  simt::Device device(device_config());
  const auto g = graph::rmat(11, 8000, 22);
  GoshConfig config = gosh_normal();
  config.train.dim = 16;
  config.total_epochs = 60;
  const auto result = gosh_embed(g, device, config);
  ASSERT_GT(result.levels.size(), 1u);
  // Level 0 is the original graph; deeper levels shrink.
  EXPECT_EQ(result.levels[0].vertices, g.num_vertices());
  for (std::size_t i = 0; i + 1 < result.levels.size(); ++i) {
    EXPECT_GT(result.levels[i].vertices, result.levels[i + 1].vertices);
    EXPECT_GT(result.levels[i].epochs, 0u);
  }
  EXPECT_GT(result.coarsening_seconds, 0.0);
  EXPECT_GT(result.training_seconds, 0.0);
}

TEST(GoshEmbed, NoCoarseningUsesSingleLevel) {
  simt::Device device(device_config());
  const auto g = graph::rmat(9, 2000, 23);
  GoshConfig config = gosh_no_coarsening();
  config.train.dim = 8;
  config.total_epochs = 20;
  const auto result = gosh_embed(g, device, config);
  EXPECT_EQ(result.levels.size(), 1u);
  EXPECT_EQ(result.levels[0].epochs, 20u);
}

TEST(GoshEmbed, EdgeEpochsConvertToDensityScaledPasses) {
  simt::Device device(device_config());
  const auto g = graph::rmat(9, 2000, 25);
  GoshConfig config = gosh_no_coarsening();
  config.train.dim = 8;
  config.total_epochs = 10;
  const auto with_conversion = gosh_embed(g, device, config);
  const unsigned expected = epochs_to_passes(
      10, g.num_edges_undirected(), g.num_vertices());
  EXPECT_EQ(with_conversion.levels[0].passes, expected);

  config.edge_epochs = false;
  const auto raw = gosh_embed(g, device, config);
  EXPECT_EQ(raw.levels[0].passes, 10u);
}

TEST(GoshEmbed, FallsBackToLargeGraphPath) {
  // A device too small for graph+matrix must route through Algorithm 5 —
  // at least for the original (largest) level, while the deep-coarsened
  // levels fit and use the resident path.
  simt::Device device(device_config(192u << 10));
  graph::LfrParams params;
  params.average_degree = 10.0;
  params.communities = 32;
  const auto g = graph::lfr_like(2048, params, 24);
  GoshConfig config = gosh_fast();
  config.train.dim = 32;  // matrix = 2048*32*4 = 256 KiB > device
  config.total_epochs = 30;
  const auto result = gosh_embed(g, device, config);
  EXPECT_TRUE(result.levels[0].used_large_graph_path);
  EXPECT_FALSE(result.levels.back().used_large_graph_path);
  for (std::size_t i = 0; i < result.embedding.size(); ++i) {
    EXPECT_TRUE(std::isfinite(result.embedding.data()[i]));
  }
}

TEST(GoshEmbed, CoarseningImprovesSmallBudgetQuality) {
  // The paper's Table 6 story in miniature: with a small epoch budget,
  // multilevel training reaches structure a flat run misses. We check
  // both run and produce finite embeddings and coarsened is not worse by
  // an order of magnitude in community separation.
  const vid_t clique = 8;
  std::vector<graph::Edge> edges;
  for (vid_t u = 0; u < clique; ++u) {
    for (vid_t v = u + 1; v < clique; ++v) {
      edges.emplace_back(u, v);
      edges.emplace_back(clique + u, clique + v);
    }
  }
  edges.emplace_back(0, clique);
  const auto g = graph::build_csr(2 * clique, std::move(edges));

  auto separation = [&](bool coarsen) {
    simt::Device device(device_config());
    GoshConfig config = coarsen ? gosh_normal() : gosh_no_coarsening();
    config.train.dim = 16;
    config.train.learning_rate = 0.05f;
    config.total_epochs = 400;
    config.coarsening.threshold = 4;
    const auto result = gosh_embed(g, device, config);
    float intra = 0.0f, inter = 0.0f;
    int intra_n = 0, inter_n = 0;
    for (vid_t u = 0; u < 2 * clique; ++u) {
      for (vid_t v = u + 1; v < 2 * clique; ++v) {
        const float d = dot(result.embedding.row(u).data(),
                            result.embedding.row(v).data(), 16);
        if ((u < clique) == (v < clique)) {
          intra += d;
          intra_n++;
        } else {
          inter += d;
          inter_n++;
        }
      }
    }
    return intra / intra_n - inter / inter_n;
  };
  EXPECT_GT(separation(true), 0.05f);
  EXPECT_GT(separation(false), 0.05f);
}

}  // namespace
}  // namespace gosh::embedding
