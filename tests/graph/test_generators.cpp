// Generator properties: closed-form structure and statistical shape.
#include <gtest/gtest.h>

#include <algorithm>

#include "gosh/graph/generators.hpp"
#include "gosh/graph/ops.hpp"

namespace gosh::graph {
namespace {

TEST(Structured, PathGraph) {
  Graph g = path_graph(5);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges_undirected(), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_EQ(g.degree(4), 1u);
}

TEST(Structured, CycleGraph) {
  Graph g = cycle_graph(6);
  EXPECT_EQ(g.num_edges_undirected(), 6u);
  for (vid_t v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2u);
}

TEST(Structured, StarGraph) {
  Graph g = star_graph(9);
  EXPECT_EQ(g.degree(0), 8u);
  for (vid_t v = 1; v < 9; ++v) EXPECT_EQ(g.degree(v), 1u);
}

TEST(Structured, CompleteGraph) {
  Graph g = complete_graph(7);
  EXPECT_EQ(g.num_edges_undirected(), 21u);
  for (vid_t v = 0; v < 7; ++v) EXPECT_EQ(g.degree(v), 6u);
}

TEST(Structured, CompleteBipartite) {
  Graph g = complete_bipartite(3, 4);
  EXPECT_EQ(g.num_vertices(), 7u);
  EXPECT_EQ(g.num_edges_undirected(), 12u);
  for (vid_t v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 4u);
  for (vid_t v = 3; v < 7; ++v) EXPECT_EQ(g.degree(v), 3u);
}

TEST(Structured, GridGraph) {
  Graph g = grid_graph(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  EXPECT_EQ(g.num_edges_undirected(), 2u * 4 + 3u * 3);  // rows*(c-1)+cols*(r-1)
  EXPECT_EQ(g.degree(0), 2u);   // corner
  EXPECT_EQ(g.degree(5), 4u);   // interior
}

TEST(ErdosRenyi, ExactEdgeCount) {
  Graph g = erdos_renyi(100, 500, 42);
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_EQ(g.num_edges_undirected(), 500u);
  EXPECT_TRUE(g.is_symmetric());
}

TEST(ErdosRenyi, DeterministicInSeed) {
  EXPECT_EQ(erdos_renyi(50, 100, 7), erdos_renyi(50, 100, 7));
  EXPECT_NE(erdos_renyi(50, 100, 7), erdos_renyi(50, 100, 8));
}

TEST(ErdosRenyi, RejectsInfeasible) {
  EXPECT_THROW(erdos_renyi(3, 10, 1), std::invalid_argument);
  EXPECT_THROW(erdos_renyi(1, 0, 1), std::invalid_argument);
}

TEST(Rmat, VertexCountIsPowerOfTwo) {
  Graph g = rmat(10, 5000, 1);
  EXPECT_EQ(g.num_vertices(), 1024u);
  EXPECT_TRUE(g.is_symmetric());
  // Dedup/self-loop removal only shrinks the sampled count.
  EXPECT_LE(g.num_edges_undirected(), 5000u);
  EXPECT_GT(g.num_edges_undirected(), 2500u);
}

TEST(Rmat, SkewedDegreesVsErdosRenyi) {
  Graph r = rmat(12, 20000, 3);
  Graph e = erdos_renyi(4096, 20000, 3);
  // RMAT's hub should dwarf the ER max degree.
  EXPECT_GT(degree_stats(r).max, 2 * degree_stats(e).max);
}

TEST(Rmat, DeterministicInSeed) {
  EXPECT_EQ(rmat(8, 1000, 5), rmat(8, 1000, 5));
}

TEST(Rmat, RejectsBadParameters) {
  EXPECT_THROW(rmat(0, 10, 1), std::invalid_argument);
  RmatParams params;
  params.a = 0.9;  // sums > 1 with defaults
  EXPECT_THROW(rmat(4, 10, 1, params), std::invalid_argument);
}

TEST(BarabasiAlbert, DegreeFloorAndHubs) {
  Graph g = barabasi_albert(2000, 3, 11);
  EXPECT_EQ(g.num_vertices(), 2000u);
  const auto stats = degree_stats(g);
  EXPECT_GE(stats.min, 3u);            // every late vertex attaches 3 edges
  EXPECT_GT(stats.max, 30u);           // preferential attachment builds hubs
  EXPECT_EQ(stats.isolated, 0u);
}

TEST(BarabasiAlbert, RejectsBadParameters) {
  EXPECT_THROW(barabasi_albert(5, 0, 1), std::invalid_argument);
  EXPECT_THROW(barabasi_albert(5, 5, 1), std::invalid_argument);
}

TEST(WattsStrogatz, RegularWhenBetaZero) {
  Graph g = watts_strogatz(100, 3, 0.0, 9);
  for (vid_t v = 0; v < 100; ++v) EXPECT_EQ(g.degree(v), 6u);
}

TEST(WattsStrogatz, RewiringPreservesApproximateEdgeCount) {
  Graph g = watts_strogatz(1000, 4, 0.3, 9);
  // Rewiring can only drop edges via collision; expect most to survive.
  EXPECT_GT(g.num_edges_undirected(), 3500u);
  EXPECT_LE(g.num_edges_undirected(), 4000u);
}

TEST(HolmeKim, DegreeFloorAndHubs) {
  Graph g = holme_kim(2000, 4, 0.6, 11);
  const auto stats = degree_stats(g);
  EXPECT_GE(stats.min, 4u);
  EXPECT_GT(stats.max, 40u);  // preferential attachment keeps the tail
}

TEST(HolmeKim, TriadsRaiseClustering) {
  // Count triangles through a sample of wedges; the triad-closure variant
  // must beat plain BA by a wide margin.
  auto wedge_closure = [](const Graph& g) {
    std::uint64_t wedges = 0, closed = 0;
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      const auto nb = g.neighbors(v);
      for (std::size_t i = 0; i < nb.size(); ++i) {
        for (std::size_t j = i + 1; j < nb.size() && j < i + 8; ++j) {
          ++wedges;
          closed += has_arc(g, nb[i], nb[j]);
        }
      }
    }
    return static_cast<double>(closed) / static_cast<double>(wedges);
  };
  const double hk = wedge_closure(holme_kim(1500, 4, 0.8, 5));
  const double ba = wedge_closure(barabasi_albert(1500, 4, 5));
  EXPECT_GT(hk, 2.0 * ba);
}

TEST(HolmeKim, DeterministicAndValidates) {
  EXPECT_EQ(holme_kim(300, 3, 0.5, 9), holme_kim(300, 3, 0.5, 9));
  EXPECT_THROW(holme_kim(5, 0, 0.5, 1), std::invalid_argument);
  EXPECT_THROW(holme_kim(5, 5, 0.5, 1), std::invalid_argument);
}

TEST(LfrLike, HitsTargetDensityRoughly) {
  LfrParams params;
  params.average_degree = 12.0;
  params.communities = 32;
  Graph g = lfr_like(4096, params, 3);
  const double density =
      static_cast<double>(g.num_edges_undirected()) / g.num_vertices();
  EXPECT_GT(density, 12.0 / 2 * 0.6);
  EXPECT_LT(density, 12.0 / 2 * 1.2);
}

TEST(LfrLike, HasHeavyTail) {
  LfrParams params;
  params.average_degree = 10.0;
  Graph g = lfr_like(4096, params, 4);
  const auto stats = degree_stats(g);
  EXPECT_GT(stats.max, 4 * stats.mean);
}

TEST(LfrLike, MixingControlsCommunityPurity) {
  // With tiny mixing nearly all edges stay inside a community; measure by
  // re-deriving communities from the generator's own assignment (id-free:
  // use modularity proxy — low-mixing graph has far fewer cross edges
  // than a high-mixing one against the same community count).
  LfrParams low;
  low.average_degree = 12.0;
  low.mixing = 0.05;
  LfrParams high = low;
  high.mixing = 0.6;
  // Proxy: clustering-style wedge closure is much higher at low mixing.
  auto closure = [](const Graph& g) {
    std::uint64_t wedges = 0, closed = 0;
    for (vid_t v = 0; v < g.num_vertices(); v += 3) {
      const auto nb = g.neighbors(v);
      for (std::size_t i = 0; i + 1 < nb.size() && i < 6; ++i) {
        ++wedges;
        closed += has_arc(g, nb[i], nb[i + 1]);
      }
    }
    return wedges == 0 ? 0.0
                       : static_cast<double>(closed) /
                             static_cast<double>(wedges);
  };
  EXPECT_GT(closure(lfr_like(2048, low, 5)),
            closure(lfr_like(2048, high, 5)) * 1.5);
}

TEST(LfrLike, DeterministicAndValidates) {
  LfrParams params;
  EXPECT_EQ(lfr_like(512, params, 6), lfr_like(512, params, 6));
  params.mixing = 1.5;
  EXPECT_THROW(lfr_like(512, params, 6), std::invalid_argument);
}

class GeneratorConnectivityTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorConnectivityTest, BarabasiAlbertIsConnected) {
  Graph g = barabasi_albert(500, 2, GetParam());
  vid_t components = 0;
  connected_components(g, components);
  EXPECT_EQ(components, 1u);  // preferential attachment grows one component
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorConnectivityTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace gosh::graph
