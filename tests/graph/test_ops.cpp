// Structural operations: stats, relabel, subgraph, components.
#include <gtest/gtest.h>

#include "gosh/graph/builder.hpp"
#include "gosh/graph/generators.hpp"
#include "gosh/graph/ops.hpp"

namespace gosh::graph {
namespace {

TEST(DegreeStats, StarProperties) {
  const auto stats = degree_stats(star_graph(10));
  EXPECT_EQ(stats.max, 9u);
  EXPECT_EQ(stats.min, 1u);
  EXPECT_EQ(stats.isolated, 0u);
  EXPECT_DOUBLE_EQ(stats.mean, 18.0 / 10.0);
}

TEST(DegreeStats, CountsIsolated) {
  Graph g = build_csr(5, {{0, 1}});
  EXPECT_EQ(degree_stats(g).isolated, 3u);
}

TEST(Relabel, DropsAndRenames) {
  // Path 0-1-2-3; drop vertex 1 -> two arcs survive between {2,3}.
  Graph g = path_graph(4);
  std::vector<vid_t> map = {0, kInvalidVertex, 1, 2};
  Graph h = relabel(g, map, 3);
  EXPECT_EQ(h.num_vertices(), 3u);
  EXPECT_EQ(h.num_edges_undirected(), 1u);  // only old 2-3 survives
  EXPECT_TRUE(has_arc(h, 1, 2));
  EXPECT_FALSE(has_arc(h, 0, 1));
}

TEST(InducedSubgraph, TriangleFromClique) {
  Graph g = complete_graph(6);
  Graph h = induced_subgraph(g, {1, 3, 5});
  EXPECT_EQ(h.num_vertices(), 3u);
  EXPECT_EQ(h.num_edges_undirected(), 3u);
}

TEST(ConnectedComponents, CountsIslands) {
  // Two triangles + an isolated vertex.
  Graph g = build_csr(7, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  vid_t count = 0;
  const auto component = connected_components(g, count);
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(component[0], component[1]);
  EXPECT_EQ(component[3], component[5]);
  EXPECT_NE(component[0], component[3]);
  EXPECT_NE(component[6], component[0]);
}

TEST(ConnectedComponents, SingleComponent) {
  vid_t count = 0;
  connected_components(cycle_graph(50), count);
  EXPECT_EQ(count, 1u);
}

TEST(HasArc, PresentAndAbsent) {
  Graph g = path_graph(4);
  EXPECT_TRUE(has_arc(g, 1, 2));
  EXPECT_TRUE(has_arc(g, 2, 1));
  EXPECT_FALSE(has_arc(g, 0, 3));
}

}  // namespace
}  // namespace gosh::graph
