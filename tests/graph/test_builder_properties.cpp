// Property-style builder sweeps: random COO inputs must always produce
// CSR graphs satisfying the structural contract.
#include <gtest/gtest.h>

#include <tuple>

#include "gosh/common/rng.hpp"
#include "gosh/graph/builder.hpp"

namespace gosh::graph {
namespace {

std::vector<Edge> random_arcs(vid_t n, std::size_t count, std::uint64_t seed,
                              bool with_self_loops) {
  Rng rng(seed);
  std::vector<Edge> arcs;
  arcs.reserve(count);
  while (arcs.size() < count) {
    const vid_t u = rng.next_vertex(n);
    const vid_t v = rng.next_vertex(n);
    if (!with_self_loops && u == v) continue;
    arcs.emplace_back(u, v);
  }
  return arcs;
}

class BuilderPropertyTest
    : public ::testing::TestWithParam<std::tuple<vid_t, std::size_t,
                                                 std::uint64_t>> {};

TEST_P(BuilderPropertyTest, SymmetrizedInvariants) {
  const auto [n, count, seed] = GetParam();
  Graph g = build_csr(n, random_arcs(n, count, seed, true));
  EXPECT_EQ(g.num_vertices(), n);
  EXPECT_TRUE(g.has_sorted_adjacency());
  EXPECT_TRUE(g.is_symmetric());
  EXPECT_EQ(g.num_arcs() % 2, 0u);  // symmetrized + dedup => arc pairs
  // No self loops, no duplicates within a slice.
  for (vid_t v = 0; v < n; ++v) {
    const auto nb = g.neighbors(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      EXPECT_NE(nb[i], v);
      if (i > 0) {
        EXPECT_LT(nb[i - 1], nb[i]);
      }
    }
  }
  // Degree sum identity.
  eid_t degree_sum = 0;
  for (vid_t v = 0; v < n; ++v) degree_sum += g.degree(v);
  EXPECT_EQ(degree_sum, g.num_arcs());
}

TEST_P(BuilderPropertyTest, DirectedPreservesArcCountWithoutDedup) {
  const auto [n, count, seed] = GetParam();
  BuildOptions options;
  options.symmetrize = false;
  options.dedup = false;
  options.remove_self_loops = false;
  options.sort_adjacency = false;
  const auto arcs = random_arcs(n, count, seed, true);
  Graph g = build_csr(n, arcs, options);
  EXPECT_EQ(g.num_arcs(), arcs.size());
}

TEST_P(BuilderPropertyTest, RebuildFromUndirectedEdgesIsIdentity) {
  const auto [n, count, seed] = GetParam();
  Graph g = build_csr(n, random_arcs(n, count, seed, false));
  Graph rebuilt = build_csr(n, undirected_edges(g));
  EXPECT_EQ(g, rebuilt);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BuilderPropertyTest,
    ::testing::Combine(::testing::Values<vid_t>(2, 10, 100, 1000),
                       ::testing::Values<std::size_t>(1, 50, 2000),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

}  // namespace
}  // namespace gosh::graph
