// Link-prediction split semantics (paper Section 4.1).
#include <gtest/gtest.h>

#include "gosh/graph/generators.hpp"
#include "gosh/graph/ops.hpp"
#include "gosh/graph/split.hpp"

namespace gosh::graph {
namespace {

TEST(Split, ApproximateFraction) {
  Graph g = erdos_renyi(2000, 10000, 21);
  const auto split = split_for_link_prediction(g, {.train_fraction = 0.8,
                                                   .seed = 1});
  const double train = static_cast<double>(split.train.num_edges_undirected());
  const double test = static_cast<double>(split.test_edges.size() +
                                          split.dropped_test_edges);
  EXPECT_NEAR(train / (train + test), 0.8, 0.02);
}

TEST(Split, NoIsolatedVerticesInTrain) {
  Graph g = erdos_renyi(500, 800, 5);  // sparse => isolation likely
  const auto split = split_for_link_prediction(g);
  for (vid_t v = 0; v < split.train.num_vertices(); ++v) {
    EXPECT_GT(split.train.degree(v), 0u);
  }
}

TEST(Split, TestEndpointsAreTrainVertices) {
  Graph g = erdos_renyi(500, 1200, 6);
  const auto split = split_for_link_prediction(g);
  for (const auto& [u, v] : split.test_edges) {
    EXPECT_LT(u, split.train.num_vertices());
    EXPECT_LT(v, split.train.num_vertices());
  }
}

TEST(Split, TestEdgesNotInTrain) {
  Graph g = erdos_renyi(300, 2000, 7);
  const auto split = split_for_link_prediction(g);
  for (const auto& [u, v] : split.test_edges) {
    EXPECT_FALSE(has_arc(split.train, u, v));
  }
}

TEST(Split, MappingIsConsistent) {
  Graph g = erdos_renyi(400, 1000, 8);
  const auto split = split_for_link_prediction(g);
  vid_t mapped = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (split.original_to_train[v] != kInvalidVertex) {
      EXPECT_LT(split.original_to_train[v], split.train.num_vertices());
      ++mapped;
    }
  }
  EXPECT_EQ(mapped, split.train.num_vertices());
}

TEST(Split, DeterministicInSeed) {
  Graph g = erdos_renyi(300, 900, 9);
  const auto a = split_for_link_prediction(g, {.seed = 4});
  const auto b = split_for_link_prediction(g, {.seed = 4});
  EXPECT_EQ(a.train, b.train);
  EXPECT_EQ(a.test_edges, b.test_edges);
}

class SplitFractionTest : public ::testing::TestWithParam<double> {};

TEST_P(SplitFractionTest, EdgeConservation) {
  Graph g = erdos_renyi(1000, 5000, 13);
  const auto split =
      split_for_link_prediction(g, {.train_fraction = GetParam(), .seed = 2});
  // Every original edge is train, kept-test, or dropped-test.
  EXPECT_EQ(split.train.num_edges_undirected() + split.test_edges.size() +
                split.dropped_test_edges,
            g.num_edges_undirected());
}

INSTANTIATE_TEST_SUITE_P(Fractions, SplitFractionTest,
                         ::testing::Values(0.5, 0.7, 0.8, 0.9, 0.95));

}  // namespace
}  // namespace gosh::graph
