// CSR graph and builder invariants.
#include <gtest/gtest.h>

#include "gosh/graph/builder.hpp"
#include "gosh/graph/graph.hpp"

namespace gosh::graph {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_arcs(), 0u);
}

TEST(Builder, TriangleSymmetrized) {
  Graph g = build_csr(3, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_arcs(), 6u);
  EXPECT_EQ(g.num_edges_undirected(), 3u);
  EXPECT_TRUE(g.is_symmetric());
  EXPECT_TRUE(g.has_sorted_adjacency());
  for (vid_t v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2u);
}

TEST(Builder, RemovesSelfLoops) {
  Graph g = build_csr(3, {{0, 0}, {0, 1}, {1, 1}, {2, 2}});
  EXPECT_EQ(g.num_arcs(), 2u);  // only 0-1 survives, symmetrized
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(Builder, KeepsSelfLoopsWhenAsked) {
  BuildOptions options;
  options.remove_self_loops = false;
  options.symmetrize = false;
  Graph g = build_csr(2, {{0, 0}, {0, 1}}, options);
  EXPECT_EQ(g.num_arcs(), 2u);
}

TEST(Builder, DeduplicatesParallelEdges) {
  Graph g = build_csr(2, {{0, 1}, {0, 1}, {1, 0}});
  EXPECT_EQ(g.num_arcs(), 2u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(Builder, DirectedWhenSymmetrizeOff) {
  BuildOptions options;
  options.symmetrize = false;
  Graph g = build_csr(3, {{0, 1}, {0, 2}}, options);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 0u);
  EXPECT_FALSE(g.is_symmetric());
}

TEST(Builder, AutoSizesVertexCount) {
  Graph g = build_csr_auto({{0, 5}, {2, 3}});
  EXPECT_EQ(g.num_vertices(), 6u);
}

TEST(Builder, AutoEmptyEdgeList) {
  Graph g = build_csr_auto({});
  EXPECT_EQ(g.num_vertices(), 0u);
}

TEST(Builder, IsolatedTrailingVertices) {
  Graph g = build_csr(10, {{0, 1}});
  EXPECT_EQ(g.num_vertices(), 10u);
  for (vid_t v = 2; v < 10; ++v) EXPECT_EQ(g.degree(v), 0u);
}

TEST(Builder, AverageDegreeIsArcsOverVertices) {
  Graph g = build_csr(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_DOUBLE_EQ(g.average_degree(), 2.0);
}

TEST(UndirectedEdges, RoundTripsThroughBuilder) {
  const std::vector<Edge> original = {{0, 1}, {1, 2}, {2, 3}, {0, 3}, {1, 3}};
  Graph g = build_csr(4, original);
  auto extracted = undirected_edges(g);
  EXPECT_EQ(extracted.size(), original.size());
  Graph rebuilt = build_csr(4, extracted);
  EXPECT_EQ(g, rebuilt);
}

TEST(Graph, MemoryBytesAccounting) {
  Graph g = build_csr(3, {{0, 1}, {1, 2}});
  EXPECT_EQ(g.memory_bytes(),
            4 * sizeof(eid_t) + g.num_arcs() * sizeof(vid_t));
}

TEST(Graph, NeighborsSpanContents) {
  Graph g = build_csr(4, {{2, 0}, {2, 3}, {2, 1}});
  auto nb = g.neighbors(2);
  ASSERT_EQ(nb.size(), 3u);
  EXPECT_EQ(nb[0], 0u);
  EXPECT_EQ(nb[1], 1u);
  EXPECT_EQ(nb[2], 3u);
}

}  // namespace
}  // namespace gosh::graph
