// Table 2 dataset registry.
#include <gtest/gtest.h>

#include "gosh/graph/datasets.hpp"
#include "gosh/graph/ops.hpp"

namespace gosh::graph {
namespace {

TEST(Datasets, TwelveEntriesWithPaperStats) {
  const auto specs = table2_datasets();
  ASSERT_EQ(specs.size(), 12u);
  // Spot-check against Table 2 of the paper.
  EXPECT_EQ(specs[0].name, "com-dblp");
  EXPECT_EQ(specs[0].paper_vertices, 317080u);
  EXPECT_EQ(specs[0].paper_edges, 1049866u);
  EXPECT_FALSE(specs[0].large_scale);
  EXPECT_EQ(specs[11].name, "com-friendster");
  EXPECT_EQ(specs[11].paper_vertices, 65608366u);
  EXPECT_TRUE(specs[11].large_scale);
}

TEST(Datasets, ScalesControlVertexCounts) {
  const auto small = find_dataset("youtube", 10, 12);
  const auto large = find_dataset("youtube", 12, 14);
  EXPECT_EQ(generate_dataset(small).num_vertices(), 1u << 10);
  EXPECT_EQ(generate_dataset(large).num_vertices(), 1u << 12);
}

TEST(Datasets, LargeEntriesUseLargeScale) {
  const auto spec = find_dataset("twitter_rv", 10, 13);
  EXPECT_EQ(generate_dataset(spec).num_vertices(), 1u << 13);
}

TEST(Datasets, UnknownNameThrows) {
  EXPECT_THROW(find_dataset("not-a-graph"), std::out_of_range);
}

TEST(Datasets, GenerationIsDeterministic) {
  const auto spec = find_dataset("com-amazon", 10, 12);
  EXPECT_EQ(generate_dataset(spec), generate_dataset(spec));
}

TEST(Datasets, AnalogDegreesAreHeavyTailed) {
  const auto g = generate_dataset(find_dataset("soc-pokec", 11, 12));
  const auto stats = degree_stats(g);
  EXPECT_GT(stats.max, 3 * stats.mean);
}

class DatasetDensityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DatasetDensityTest, AnalogDensityTracksPaper) {
  const auto spec = find_dataset(GetParam(), 11, 12);
  const auto g = generate_dataset(spec);
  const double density =
      static_cast<double>(g.num_edges_undirected()) / g.num_vertices();
  EXPECT_GT(density, spec.paper_density * 0.4) << GetParam();
  EXPECT_LT(density, spec.paper_density * 1.6) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Names, DatasetDensityTest,
                         ::testing::Values("com-dblp", "youtube", "com-lj",
                                           "soc-LiveJournal",
                                           "soc-sinaweibo"));

}  // namespace
}  // namespace gosh::graph
