// Edge-list and binary IO round trips.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "gosh/graph/generators.hpp"
#include "gosh/graph/io.hpp"

namespace gosh::graph {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per process: ctest -j runs each TEST_F as its own process, and
    // a shared directory would let one test's TearDown delete another's
    // files mid-run.
    dir_ = std::filesystem::temp_directory_path() /
           ("gosh_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(IoTest, EdgeListRoundTrip) {
  Graph original = erdos_renyi(200, 800, 3);
  write_edge_list(original, path("g.txt"));
  Graph loaded = read_edge_list(path("g.txt"));
  // Ids are compacted in first-appearance order, so compare structure:
  EXPECT_EQ(loaded.num_arcs(), original.num_arcs());
  EXPECT_TRUE(loaded.is_symmetric());
}

TEST_F(IoTest, EdgeListSkipsComments) {
  {
    std::ofstream out(path("c.txt"));
    out << "# SNAP-style comment\n% matrix-market comment\n0 1\n1 2\n";
  }
  Graph g = read_edge_list(path("c.txt"));
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges_undirected(), 2u);
}

TEST_F(IoTest, EdgeListCompactsSparseIds) {
  {
    std::ofstream out(path("s.txt"));
    out << "1000000 2000000\n2000000 3000000\n";
  }
  Graph g = read_edge_list(path("s.txt"));
  EXPECT_EQ(g.num_vertices(), 3u);
}

TEST_F(IoTest, EdgeListRejectsMalformed) {
  {
    std::ofstream out(path("bad.txt"));
    out << "0 1\nnot numbers\n";
  }
  EXPECT_THROW(read_edge_list(path("bad.txt")), std::runtime_error);
}

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW(read_edge_list(path("nope.txt")), std::runtime_error);
  EXPECT_THROW(read_binary(path("nope.bin")), std::runtime_error);
}

TEST_F(IoTest, BinaryRoundTripExact) {
  Graph original = rmat(9, 3000, 17);
  write_binary(original, path("g.bin"));
  Graph loaded = read_binary(path("g.bin"));
  EXPECT_EQ(original, loaded);
}

TEST_F(IoTest, BinaryRejectsBadMagic) {
  {
    std::ofstream out(path("junk.bin"), std::ios::binary);
    out << "JUNKJUNKJUNKJUNK";
  }
  EXPECT_THROW(read_binary(path("junk.bin")), std::runtime_error);
}

TEST_F(IoTest, BinaryRejectsTruncated) {
  Graph original = erdos_renyi(100, 300, 5);
  write_binary(original, path("t.bin"));
  // Truncate the file in half.
  const auto size = std::filesystem::file_size(path("t.bin"));
  std::filesystem::resize_file(path("t.bin"), size / 2);
  EXPECT_THROW(read_binary(path("t.bin")), std::runtime_error);
}

TEST_F(IoTest, EmptyGraphBinaryRoundTrip) {
  Graph original = build_csr(5, {});
  write_binary(original, path("e.bin"));
  Graph loaded = read_binary(path("e.bin"));
  EXPECT_EQ(original, loaded);
}

}  // namespace
}  // namespace gosh::graph
