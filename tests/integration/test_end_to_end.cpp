// Cross-module integration: the full paper pipeline at miniature scale.
#include <gtest/gtest.h>

#include <cmath>

#include "gosh/baselines/verse_cpu.hpp"
#include "gosh/embedding/gosh.hpp"
#include "gosh/eval/pipeline.hpp"
#include "gosh/graph/datasets.hpp"
#include "gosh/graph/generators.hpp"
#include "gosh/graph/split.hpp"

namespace gosh {
namespace {

simt::DeviceConfig device_config(std::size_t bytes) {
  simt::DeviceConfig config;
  config.memory_bytes = bytes;
  config.workers = 2;
  return config;
}

TEST(EndToEnd, DatasetRegistryCoversTable2) {
  const auto specs = graph::table2_datasets();
  ASSERT_EQ(specs.size(), 12u);
  int large = 0;
  for (const auto& spec : specs) large += spec.large_scale;
  EXPECT_EQ(large, 4);  // hyperlink2012, soc-sinaweibo, twitter_rv, friendster
  // Every analog preserves its paper density within 2x (dedup losses).
  for (const auto& spec : specs) {
    const auto g = graph::generate_dataset(
        graph::find_dataset(spec.name, 10, 11));  // small scale for speed
    const double analog_density =
        static_cast<double>(g.num_edges_undirected()) / g.num_vertices();
    EXPECT_GT(analog_density, spec.paper_density * 0.3) << spec.name;
    EXPECT_LT(analog_density, spec.paper_density * 2.0) << spec.name;
  }
}

TEST(EndToEnd, GoshBeatsRandomAndApproachesVerse) {
  // The Table 6 shape at miniature scale: GOSH (coarsened, device) and
  // VERSE (CPU) should land in the same AUC band, both far above chance.
  graph::LfrParams params;
  params.average_degree = 14.0;
  params.communities = 32;
  const auto g = graph::lfr_like(2048, params, 91);
  const auto split = graph::split_for_link_prediction(g, {.seed = 7});

  simt::Device device(device_config(64u << 20));
  embedding::GoshConfig gosh_config = embedding::gosh_normal();
  gosh_config.train.dim = 32;
  gosh_config.total_epochs = 300;
  const auto gosh_result =
      embedding::gosh_embed(split.train, device, gosh_config);
  const auto gosh_report =
      eval::evaluate_link_prediction(gosh_result.embedding, split);

  baselines::VerseConfig verse_config;
  verse_config.dim = 32;
  verse_config.epochs = 300;
  verse_config.learning_rate = 0.025f;
  verse_config.similarity = baselines::VerseConfig::Similarity::kAdjacency;
  const auto verse_matrix = baselines::verse_cpu_embed(split.train, verse_config);
  const auto verse_report = eval::evaluate_link_prediction(verse_matrix, split);

  EXPECT_GT(gosh_report.auc_roc, 0.8);
  EXPECT_GT(verse_report.auc_roc, 0.8);
  EXPECT_NEAR(gosh_report.auc_roc, verse_report.auc_roc, 0.1);
}

TEST(EndToEnd, LargeGraphPathMatchesResidentQuality) {
  // Same graph, two devices: one fits everything, one forces Algorithm 5.
  // AUCROC must land in the same band (the paper's claim that partitioned
  // training is "almost equivalent").
  graph::LfrParams params;
  params.average_degree = 14.0;
  params.communities = 32;
  const auto g = graph::lfr_like(2048, params, 92);
  const auto split = graph::split_for_link_prediction(g, {.seed = 8});

  auto run = [&](std::size_t device_bytes) {
    simt::Device device(device_config(device_bytes));
    embedding::GoshConfig config = embedding::gosh_normal();
    config.train.dim = 32;
    config.total_epochs = 300;
    const auto result = embedding::gosh_embed(split.train, device, config);
    return eval::evaluate_link_prediction(result.embedding, split).auc_roc;
  };

  const double resident = run(64u << 20);
  const double partitioned = run(220u << 10);  // ~1/6 of the matrix fits
  EXPECT_GT(partitioned, 0.75);
  EXPECT_NEAR(resident, partitioned, 0.12);
}

TEST(EndToEnd, CoarseningSpeedsUpAtSimilarQuality) {
  // Figure 4's core claim in miniature: with equal epoch budgets, the
  // multilevel run needs less wall time than the flat run because most
  // epochs land on tiny graphs — while staying in the same quality band.
  graph::LfrParams params;
  params.average_degree = 18.0;
  params.communities = 64;
  const auto g = graph::lfr_like(4096, params, 93);
  const auto split = graph::split_for_link_prediction(g, {.seed = 9});

  auto run = [&](bool coarsen, double* auc) {
    simt::Device device(device_config(128u << 20));
    embedding::GoshConfig config =
        coarsen ? embedding::gosh_normal() : embedding::gosh_no_coarsening();
    config.train.dim = 32;
    config.total_epochs = 200;
    const auto result = embedding::gosh_embed(split.train, device, config);
    *auc = eval::evaluate_link_prediction(result.embedding, split).auc_roc;
    return result.total_seconds;
  };

  double coarse_auc = 0.0, flat_auc = 0.0;
  const double coarse_time = run(true, &coarse_auc);
  const double flat_time = run(false, &flat_auc);
  EXPECT_LT(coarse_time, flat_time);
  EXPECT_GT(coarse_auc, flat_auc - 0.1);
}

}  // namespace
}  // namespace gosh
