// Cross-module integration: the full paper pipeline at miniature scale,
// driven end to end through the gosh::api facade.
#include <gtest/gtest.h>

#include <cmath>

#include "gosh/api/api.hpp"

namespace gosh {
namespace {

api::Options device_options(std::size_t bytes) {
  api::Options options;
  options.device.memory_bytes = bytes;
  options.device.workers = 2;
  return options;
}

api::EmbedResult must_embed(const graph::Graph& g,
                            const api::Options& options) {
  auto result = api::embed(g, options);
  EXPECT_TRUE(result.ok()) << result.status().to_string();
  return std::move(result).value();
}

TEST(EndToEnd, DatasetRegistryCoversTable2) {
  const auto specs = graph::table2_datasets();
  ASSERT_EQ(specs.size(), 12u);
  int large = 0;
  for (const auto& spec : specs) large += spec.large_scale;
  EXPECT_EQ(large, 4);  // hyperlink2012, soc-sinaweibo, twitter_rv, friendster
  // Every analog preserves its paper density within 2x (dedup losses).
  for (const auto& spec : specs) {
    const auto g = graph::generate_dataset(
        graph::find_dataset(spec.name, 10, 11));  // small scale for speed
    const double analog_density =
        static_cast<double>(g.num_edges_undirected()) / g.num_vertices();
    EXPECT_GT(analog_density, spec.paper_density * 0.3) << spec.name;
    EXPECT_LT(analog_density, spec.paper_density * 2.0) << spec.name;
  }
}

TEST(EndToEnd, GoshBeatsRandomAndApproachesVerse) {
  // The Table 6 shape at miniature scale: GOSH (coarsened, device) and
  // VERSE (CPU) should land in the same AUC band, both far above chance.
  graph::LfrParams params;
  params.average_degree = 14.0;
  params.communities = 32;
  const auto g = graph::lfr_like(2048, params, 91);
  const auto split = graph::split_for_link_prediction(g, {.seed = 7});

  api::Options gosh_options = device_options(64u << 20);
  gosh_options.backend = "device";
  gosh_options.train().dim = 32;
  gosh_options.gosh.total_epochs = 300;
  const auto gosh_result = must_embed(split.train, gosh_options);
  const auto gosh_report =
      eval::evaluate_link_prediction(gosh_result.embedding, split);

  api::Options verse_options = device_options(64u << 20);
  verse_options.backend = "verse-cpu";
  verse_options.train().dim = 32;
  verse_options.gosh.total_epochs = 300;
  verse_options.verse_similarity = "adjacency";
  verse_options.verse_learning_rate = 0.025f;
  const auto verse_result = must_embed(split.train, verse_options);
  const auto verse_report =
      eval::evaluate_link_prediction(verse_result.embedding, split);

  EXPECT_GT(gosh_report.auc_roc, 0.8);
  EXPECT_GT(verse_report.auc_roc, 0.8);
  EXPECT_NEAR(gosh_report.auc_roc, verse_report.auc_roc, 0.1);
}

TEST(EndToEnd, LargeGraphPathMatchesResidentQuality) {
  // Same graph, two device sizes: one fits everything, one forces
  // Algorithm 5. AUCROC must land in the same band (the paper's claim
  // that partitioned training is "almost equivalent").
  graph::LfrParams params;
  params.average_degree = 14.0;
  params.communities = 32;
  const auto g = graph::lfr_like(2048, params, 92);
  const auto split = graph::split_for_link_prediction(g, {.seed = 8});

  auto run = [&](std::size_t device_bytes) {
    api::Options options = device_options(device_bytes);
    options.backend = "auto";  // the fits-check picks the engine
    options.train().dim = 32;
    options.gosh.total_epochs = 300;
    const auto result = must_embed(split.train, options);
    return eval::evaluate_link_prediction(result.embedding, split).auc_roc;
  };

  const double resident = run(64u << 20);
  const double partitioned = run(220u << 10);  // ~1/6 of the matrix fits
  EXPECT_GT(partitioned, 0.75);
  EXPECT_NEAR(resident, partitioned, 0.12);
}

TEST(EndToEnd, CoarseningSpeedsUpAtSimilarQuality) {
  // Figure 4's core claim in miniature: with equal epoch budgets, the
  // multilevel run needs less wall time than the flat run because most
  // epochs land on tiny graphs — while staying in the same quality band.
  graph::LfrParams params;
  params.average_degree = 18.0;
  params.communities = 64;
  const auto g = graph::lfr_like(4096, params, 93);
  const auto split = graph::split_for_link_prediction(g, {.seed = 9});

  auto run = [&](bool coarsen, double* auc) {
    api::Options options = device_options(128u << 20);
    options.backend = "device";
    if (!coarsen) {
      EXPECT_TRUE(options.set("preset", "nocoarse").is_ok());
    }
    options.train().dim = 32;
    options.gosh.total_epochs = 200;
    const auto result = must_embed(split.train, options);
    *auc = eval::evaluate_link_prediction(result.embedding, split).auc_roc;
    return result.total_seconds;
  };

  double coarse_auc = 0.0, flat_auc = 0.0;
  const double coarse_time = run(true, &coarse_auc);
  const double flat_time = run(false, &flat_auc);
  EXPECT_LT(coarse_time, flat_time);
  EXPECT_GT(coarse_auc, flat_auc - 0.1);
}

}  // namespace
}  // namespace gosh
