// gosh::store — GSHS write/open round trips, shard naming, mmap row
// access, and the corruption / truncation error paths.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "gosh/store/embedding_store.hpp"

namespace gosh::store {
namespace {

embedding::EmbeddingMatrix sample_matrix(vid_t rows, unsigned dim,
                                         std::uint64_t seed = 9) {
  embedding::EmbeddingMatrix matrix(rows, dim);
  matrix.initialize_random(seed);
  return matrix;
}

// Process-unique so `ctest -j` siblings cannot collide on store files.
std::string temp_path(const std::string& name) {
  return testing::TempDir() + std::to_string(::getpid()) + "_" + name;
}

void remove_store(const std::string& path, std::uint32_t count) {
  for (std::uint32_t s = 0; s < count; ++s) {
    std::remove(EmbeddingStore::shard_path(path, s, count).c_str());
  }
}

void expect_rows_match(const embedding::EmbeddingMatrix& matrix,
                       const EmbeddingStore& store) {
  ASSERT_EQ(matrix.rows(), store.rows());
  ASSERT_EQ(matrix.dim(), store.dim());
  for (vid_t v = 0; v < matrix.rows(); ++v) {
    const auto expected = matrix.row(v);
    const auto got = store.row(v);
    ASSERT_EQ(expected.size(), got.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i], got[i]) << "row " << v << " element " << i;
    }
  }
}

TEST(EmbeddingStore, SingleShardRoundTrip) {
  const std::string path = temp_path("store_single.gshs");
  const auto matrix = sample_matrix(33, 7);
  ASSERT_TRUE(EmbeddingStore::write(matrix, path).is_ok());

  auto opened = EmbeddingStore::open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().to_string();
  EXPECT_EQ(opened.value().num_shards(), 1u);
  expect_rows_match(matrix, opened.value());

  const auto copy = opened.value().to_matrix();
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    EXPECT_EQ(matrix.data()[i], copy.data()[i]);
  }
  remove_store(path, 1);
}

TEST(EmbeddingStore, ShardedRoundTripCrossesShardBoundaries) {
  const std::string path = temp_path("store_sharded.gshs");
  const auto matrix = sample_matrix(33, 5);
  ASSERT_TRUE(
      EmbeddingStore::write(matrix, path, {.rows_per_shard = 8}).is_ok());

  // 33 rows at 8 per shard = 5 shards, last one holding a single row.
  auto opened = EmbeddingStore::open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().to_string();
  EXPECT_EQ(opened.value().num_shards(), 5u);
  expect_rows_match(matrix, opened.value());

  // Shard naming: root is shard 0, siblings carry the 4-digit suffix.
  EXPECT_EQ(EmbeddingStore::shard_path(path, 0, 5), path);
  std::ifstream sibling(EmbeddingStore::shard_path(path, 3, 5));
  EXPECT_TRUE(sibling.good());
  remove_store(path, 5);
}

TEST(EmbeddingStore, EmptyMatrixRoundTrips) {
  const std::string path = temp_path("store_empty.gshs");
  ASSERT_TRUE(
      EmbeddingStore::write(embedding::EmbeddingMatrix(0, 4), path).is_ok());
  auto opened = EmbeddingStore::open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().to_string();
  EXPECT_EQ(opened.value().rows(), 0u);
  EXPECT_EQ(opened.value().dim(), 4u);
  remove_store(path, 1);
}

TEST(EmbeddingStore, ZeroDimRejected) {
  EXPECT_EQ(EmbeddingStore::write(embedding::EmbeddingMatrix(), "/tmp/x")
                .code(),
            api::StatusCode::kInvalidArgument);
}

TEST(EmbeddingStore, MissingFileIsIoError) {
  auto opened = EmbeddingStore::open(temp_path("store_does_not_exist.gshs"));
  EXPECT_EQ(opened.status().code(), api::StatusCode::kIoError);
}

TEST(EmbeddingStore, WrongMagicRejected) {
  const std::string path = temp_path("store_not_a_store.gshs");
  {
    // Big enough to pass the header read, wrong magic ("GSHE" is the
    // in-memory matrix format, not a store).
    std::ofstream out(path, std::ios::binary);
    out << "GSHE" << std::string(8192, 'x');
  }
  auto opened = EmbeddingStore::open(path);
  EXPECT_EQ(opened.status().code(), api::StatusCode::kIoError);
  EXPECT_NE(opened.status().message().find("magic"), std::string::npos);
  std::remove(path.c_str());
}

TEST(EmbeddingStore, TruncatedPayloadRejected) {
  const std::string path = temp_path("store_truncated.gshs");
  ASSERT_TRUE(EmbeddingStore::write(sample_matrix(16, 8), path).is_ok());
  // Chop the last row off the payload; the size check must catch it.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  bytes.resize(bytes.size() - 8 * sizeof(float));
  std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;

  auto opened = EmbeddingStore::open(path);
  EXPECT_EQ(opened.status().code(), api::StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(EmbeddingStore, CorruptPayloadCaughtByChecksum) {
  const std::string path = temp_path("store_corrupt.gshs");
  ASSERT_TRUE(EmbeddingStore::write(sample_matrix(16, 8), path).is_ok());
  {
    // Flip one payload byte without changing the file size.
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(4096 + 100);
    char byte = 0;
    file.read(&byte, 1);
    file.seekp(4096 + 100);
    byte = static_cast<char>(byte ^ 0x40);
    file.write(&byte, 1);
  }
  auto verified = EmbeddingStore::open(path);
  EXPECT_EQ(verified.status().code(), api::StatusCode::kIoError);
  EXPECT_NE(verified.status().message().find("checksum"), std::string::npos);

  // Opting out of verification maps the shard anyway (the out-of-core
  // fast path for very large stores).
  auto unverified = EmbeddingStore::open(path, {.verify_checksums = false});
  EXPECT_TRUE(unverified.ok()) << unverified.status().to_string();
  std::remove(path.c_str());
}

TEST(EmbeddingStore, MissingShardRejected) {
  const std::string path = temp_path("store_missing_shard.gshs");
  ASSERT_TRUE(
      EmbeddingStore::write(sample_matrix(30, 4), path, {.rows_per_shard = 10})
          .is_ok());
  std::remove(EmbeddingStore::shard_path(path, 1, 3).c_str());
  auto opened = EmbeddingStore::open(path);
  EXPECT_EQ(opened.status().code(), api::StatusCode::kIoError);
  EXPECT_NE(opened.status().message().find("missing"), std::string::npos);
  remove_store(path, 3);
}

TEST(EmbeddingStore, CorruptHeaderRejected) {
  const std::string path = temp_path("store_bad_header.gshs");
  ASSERT_TRUE(EmbeddingStore::write(sample_matrix(8, 4), path).is_ok());
  {
    // Inflate total_rows (offset 16) without fixing the header checksum.
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(16);
    const std::uint64_t huge = 1ull << 40;
    file.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
  }
  auto opened = EmbeddingStore::open(path);
  EXPECT_EQ(opened.status().code(), api::StatusCode::kIoError);
  EXPECT_NE(opened.status().message().find("checksum"), std::string::npos);
  std::remove(path.c_str());
}

TEST(EmbeddingStore, ProbeReadsTheLayoutWithoutMapping) {
  const std::string path = temp_path("store_probe.gshs");
  const auto matrix = sample_matrix(33, 5);
  ASSERT_TRUE(
      EmbeddingStore::write(matrix, path, {.rows_per_shard = 8}).is_ok());

  auto info = EmbeddingStore::probe(path);
  ASSERT_TRUE(info.ok()) << info.status().to_string();
  EXPECT_EQ(info.value().rows, 33u);
  EXPECT_EQ(info.value().dim, 5u);
  EXPECT_EQ(info.value().shard_count, 5u);

  EXPECT_FALSE(EmbeddingStore::probe(temp_path("no_such.gshs")).ok());
  // Probing a non-root shard is rejected: the root carries the layout.
  EXPECT_FALSE(
      EmbeddingStore::probe(EmbeddingStore::shard_path(path, 1, 5)).ok());
  remove_store(path, 5);
}

TEST(EmbeddingStore, OpenShardServesOneRebasedGroup) {
  const std::string path = temp_path("store_open_shard.gshs");
  const auto matrix = sample_matrix(33, 5);
  ASSERT_TRUE(
      EmbeddingStore::write(matrix, path, {.rows_per_shard = 8}).is_ok());

  // Middle shard: rows [16, 24) of the matrix, re-based to local [0, 8).
  auto shard = EmbeddingStore::open_shard(path, 2, 5);
  ASSERT_TRUE(shard.ok()) << shard.status().to_string();
  EXPECT_EQ(shard.value().rows(), 8u);
  EXPECT_EQ(shard.value().row_begin(), 16u);
  EXPECT_EQ(shard.value().num_shards(), 1u);
  for (vid_t local = 0; local < 8; ++local) {
    const auto expected = matrix.row(16 + local);
    const auto got = shard.value().row(local);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i], got[i]) << "local row " << local;
    }
  }

  // The last, short shard.
  auto tail = EmbeddingStore::open_shard(path, 4, 5);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail.value().rows(), 1u);
  EXPECT_EQ(tail.value().row_begin(), 32u);

  // Wrong count in the name/header pairing is rejected.
  EXPECT_FALSE(EmbeddingStore::open_shard(path, 2, 4).ok());
  EXPECT_FALSE(EmbeddingStore::open_shard(path, 9, 5).ok());
  remove_store(path, 5);
}

}  // namespace
}  // namespace gosh::store
