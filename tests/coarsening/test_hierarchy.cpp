// Hierarchy container invariants.
#include <gtest/gtest.h>

#include "gosh/coarsening/hierarchy.hpp"
#include "gosh/graph/builder.hpp"
#include "gosh/graph/generators.hpp"

namespace gosh::coarsen {
namespace {

TEST(Hierarchy, SingleLevelBasics) {
  Hierarchy h(graph::cycle_graph(10));
  EXPECT_EQ(h.depth(), 1u);
  EXPECT_EQ(&h.original(), &h.coarsest());
  const auto composed = h.composed_map(0);
  for (vid_t v = 0; v < 10; ++v) EXPECT_EQ(composed[v], v);
}

TEST(Hierarchy, PushLevelTracksMaps) {
  Hierarchy h(graph::path_graph(6));
  // 6 -> 3: pairs (0,1)(2,3)(4,5).
  std::vector<vid_t> map = {0, 0, 1, 1, 2, 2};
  h.push_level(map, graph::path_graph(3));
  EXPECT_EQ(h.depth(), 2u);
  EXPECT_EQ(h.map(0), map);
  EXPECT_EQ(h.coarsest().num_vertices(), 3u);
  EXPECT_DOUBLE_EQ(h.shrink_rate(0), 0.5);
}

TEST(Hierarchy, ComposedMapChainsLevels) {
  Hierarchy h(graph::path_graph(8));
  h.push_level({0, 0, 1, 1, 2, 2, 3, 3}, graph::path_graph(4));
  h.push_level({0, 0, 1, 1}, graph::path_graph(2));
  const auto composed = h.composed_map(2);
  // 0..3 -> super 0, 4..7 -> super 1.
  for (vid_t v = 0; v < 4; ++v) EXPECT_EQ(composed[v], 0u);
  for (vid_t v = 4; v < 8; ++v) EXPECT_EQ(composed[v], 1u);
}

TEST(Hierarchy, ShrinkRateOfEqualSizesIsZero) {
  Hierarchy h(graph::cycle_graph(4));
  std::vector<vid_t> identity = {0, 1, 2, 3};
  h.push_level(identity, graph::cycle_graph(4));
  EXPECT_DOUBLE_EQ(h.shrink_rate(0), 0.0);
}

}  // namespace
}  // namespace gosh::coarsen
