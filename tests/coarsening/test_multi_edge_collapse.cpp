// MultiEdgeCollapse invariants: mapping validity, the hub-exclusion rule,
// coarse-graph construction, hierarchy termination, and sequential/parallel
// agreement on quality-class metrics.
#include <gtest/gtest.h>

#include <set>

#include "gosh/coarsening/multi_edge_collapse.hpp"
#include "gosh/graph/builder.hpp"
#include "gosh/graph/generators.hpp"
#include "gosh/graph/ops.hpp"

namespace gosh::coarsen {
namespace {

/// Checks the structural contract of any level mapping.
void expect_valid_mapping(const graph::Graph& g, const LevelMapping& m) {
  ASSERT_EQ(m.map.size(), g.num_vertices());
  ASSERT_GT(m.num_clusters, 0u);
  std::set<vid_t> used;
  for (vid_t cluster : m.map) {
    ASSERT_NE(cluster, kInvalidVertex);  // everyone is mapped
    ASSERT_LT(cluster, m.num_clusters);
    used.insert(cluster);
  }
  EXPECT_EQ(used.size(), m.num_clusters);  // ids are contiguous [0, K)
}

/// Every cluster must be *connected through its hub*: members are the hub
/// or a direct neighbour of some member (weaker: cluster has >= 1 vertex).
/// We check the defining GOSH property — a non-singleton cluster contains
/// at least one vertex adjacent to every other member or the hub pattern —
/// by verifying each member has a neighbour inside the cluster.
void expect_clusters_locally_connected(const graph::Graph& g,
                                       const LevelMapping& m) {
  std::vector<unsigned> cluster_size(m.num_clusters, 0);
  for (vid_t v = 0; v < g.num_vertices(); ++v) cluster_size[m.map[v]]++;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (cluster_size[m.map[v]] == 1) continue;
    bool has_internal_neighbor = false;
    for (vid_t u : g.neighbors(v)) {
      if (m.map[u] == m.map[v]) {
        has_internal_neighbor = true;
        break;
      }
    }
    EXPECT_TRUE(has_internal_neighbor) << "vertex " << v;
  }
}

TEST(MapSequential, StarCollapsesToOneCluster) {
  const auto m = map_level_sequential(graph::star_graph(50));
  EXPECT_EQ(m.num_clusters, 1u);
}

TEST(MapSequential, CycleShrinksByClusters) {
  // On a cycle every degree equals delta = 2, so the hub-exclusion rule
  // admits every merge and clusters absorb both neighbours of their seed:
  // roughly |V|/3 clusters.
  const auto g = graph::cycle_graph(99);
  const auto m = map_level_sequential(g);
  expect_valid_mapping(g, m);
  EXPECT_LT(m.num_clusters, 55u);
  EXPECT_GE(m.num_clusters, 33u);
}

TEST(MapSequential, PathStallsOnHubExclusion) {
  // On a path delta = 2(n-1)/n < 2, so interior-interior merges (both
  // degree 2 > delta) are blocked: only the endpoints join a cluster.
  // This degenerate stall is exactly why the driver has the min_shrink
  // guard — and why the paper's Table 4 coarsest levels sit well above
  // the threshold of 100.
  const auto m = map_level_sequential(graph::path_graph(100));
  EXPECT_EQ(m.num_clusters, 98u);
}

TEST(MapSequential, HubExclusionRule) {
  // Two hubs (0 and 1) joined by an edge, each with many leaves. Without
  // the rule they merge into one cluster; with it they must not.
  std::vector<graph::Edge> edges = {{0, 1}};
  for (vid_t leaf = 2; leaf < 22; ++leaf) edges.push_back({0, leaf});
  for (vid_t leaf = 22; leaf < 42; ++leaf) edges.push_back({1, leaf});
  graph::Graph g = graph::build_csr(42, std::move(edges));
  // delta = 82/42 ~ 1.95; deg(0) = deg(1) = 21 > delta.
  const auto m = map_level_sequential(g);
  EXPECT_NE(m.map[0], m.map[1]) << "two hubs merged despite the rule";
}

TEST(MapSequential, LeavesJoinHubs) {
  const auto g = graph::star_graph(20);
  const auto m = map_level_sequential(g);
  for (vid_t v = 1; v < 20; ++v) EXPECT_EQ(m.map[v], m.map[0]);
}

TEST(MapSequential, Deterministic) {
  graph::Graph g = graph::rmat(10, 4000, 9);
  const auto a = map_level_sequential(g);
  const auto b = map_level_sequential(g);
  EXPECT_EQ(a.map, b.map);
  EXPECT_EQ(a.num_clusters, b.num_clusters);
}

class MapValidityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MapValidityTest, SequentialInvariantsOnRmat) {
  graph::Graph g = graph::rmat(11, 8000, GetParam());
  const auto m = map_level_sequential(g);
  expect_valid_mapping(g, m);
  expect_clusters_locally_connected(g, m);
}

TEST_P(MapValidityTest, ParallelInvariantsOnRmat) {
  graph::Graph g = graph::rmat(11, 8000, GetParam());
  const auto m = map_level_parallel(g, 4, 64);
  expect_valid_mapping(g, m);
  expect_clusters_locally_connected(g, m);
}

TEST_P(MapValidityTest, ParallelShrinkComparableToSequential) {
  graph::Graph g = graph::rmat(11, 8000, GetParam());
  const auto seq = map_level_sequential(g);
  const auto par = map_level_parallel(g, 4, 64);
  // Same quality class: cluster counts within 2x of each other (paper
  // Table 4 reports near-identical levels for tau=1 vs tau=32).
  EXPECT_LT(par.num_clusters, seq.num_clusters * 2);
  EXPECT_GT(par.num_clusters, seq.num_clusters / 2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapValidityTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(CoarseGraph, CollapsesMultiEdgesAndLoops) {
  // Two triangles bridged: clusters joining a triangle produce multi-edges
  // that must collapse to one, and intra-cluster edges must vanish.
  graph::Graph g = graph::build_csr(
      6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3}});
  LevelMapping m;
  m.map = {0, 0, 0, 1, 1, 1};
  m.num_clusters = 2;
  graph::Graph coarse = build_coarse_graph(g, m, 1, 16);
  EXPECT_EQ(coarse.num_vertices(), 2u);
  EXPECT_EQ(coarse.num_arcs(), 2u);  // one undirected edge
  EXPECT_TRUE(graph::has_arc(coarse, 0, 1));
  for (vid_t v = 0; v < 2; ++v) EXPECT_FALSE(graph::has_arc(coarse, v, v));
}

TEST(CoarseGraph, PreservesInterClusterConnectivity) {
  graph::Graph g = graph::rmat(9, 2000, 12);
  const auto m = map_level_sequential(g);
  graph::Graph coarse = build_coarse_graph(g, m, 1, 16);
  // Exhaustive cross-check: coarse arc (a,b) exists iff some fine arc
  // crosses the (a,b) cluster pair.
  std::set<std::pair<vid_t, vid_t>> expected;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    for (vid_t u : g.neighbors(v)) {
      if (m.map[v] != m.map[u]) expected.insert({m.map[v], m.map[u]});
    }
  }
  std::set<std::pair<vid_t, vid_t>> actual;
  for (vid_t c = 0; c < coarse.num_vertices(); ++c) {
    for (vid_t b : coarse.neighbors(c)) actual.insert({c, b});
  }
  EXPECT_EQ(expected, actual);
}

TEST(CoarseGraph, ParallelMatchesSequentialConstruction) {
  graph::Graph g = graph::rmat(10, 4000, 13);
  const auto m = map_level_sequential(g);
  graph::Graph seq = build_coarse_graph(g, m, 1, 16);
  graph::Graph par = build_coarse_graph(g, m, 4, 16);
  EXPECT_EQ(seq, par);  // same mapping => identical CSR
}

TEST(Hierarchy, StopsAtThresholdOnClusteredGraph) {
  // LFR-style graphs coarsen deep, so the threshold (not the stall guard)
  // terminates — the path the paper's Algorithm 4 describes.
  graph::LfrParams params;
  params.average_degree = 12.0;
  params.communities = 64;
  CoarseningConfig config;
  config.threshold = 100;
  const auto h =
      multi_edge_collapse(graph::lfr_like(4096, params, 14), config);
  EXPECT_GT(h.depth(), 2u);
  EXPECT_LE(h.coarsest().num_vertices(), 100u * 4);  // overshoot bounded
  // Every level above the last must be above the threshold.
  for (std::size_t i = 0; i + 1 < h.depth(); ++i) {
    EXPECT_GT(h.graph(i).num_vertices(), 100u);
  }
}

TEST(Hierarchy, StallGuardBoundsCoarsestOnRandomGraph) {
  // Expander-like RMAT cores stop shrinking once all degrees cluster
  // around delta; the guard must stop coarsening with a sane hierarchy —
  // the paper's own Table 4 reports coarsest levels of 414-2411 vertices
  // with threshold 100, i.e. the same stall.
  CoarseningConfig config;
  config.threshold = 50;
  const auto h = multi_edge_collapse(graph::rmat(12, 30000, 14), config);
  EXPECT_GT(h.depth(), 1u);
  // How deep the stall lands is graph-dependent (RMAT cores stall around
  // 40% of |V|); the invariants are: meaningful total shrink and strict
  // per-level shrink.
  EXPECT_LT(h.coarsest().num_vertices(), 4096u * 3 / 4);
  for (std::size_t i = 0; i + 1 < h.depth(); ++i) {
    EXPECT_LT(h.graph(i + 1).num_vertices(), h.graph(i).num_vertices());
  }
}

TEST(Hierarchy, MapsComposeToCoarsest) {
  const auto h = multi_edge_collapse(graph::rmat(10, 5000, 15), {});
  const auto composed = h.composed_map(h.depth() - 1);
  for (vid_t target : composed) {
    EXPECT_LT(target, h.coarsest().num_vertices());
  }
}

TEST(Hierarchy, ShrinksEveryLevel) {
  const auto h = multi_edge_collapse(graph::rmat(11, 10000, 16), {});
  for (std::size_t i = 0; i + 1 < h.depth(); ++i) {
    EXPECT_LT(h.graph(i + 1).num_vertices(), h.graph(i).num_vertices());
    EXPECT_GT(h.shrink_rate(i), 0.0);
  }
}

TEST(Hierarchy, CliqueStallsGracefully) {
  // A clique cannot shrink below 1 + hub-exclusion effects; ensure the
  // min_shrink guard terminates rather than looping.
  CoarseningConfig config;
  config.threshold = 2;
  const auto h = multi_edge_collapse(graph::complete_graph(64), config);
  EXPECT_LT(h.depth(), 64u);
}

TEST(Hierarchy, ParallelDriverProducesValidLevels) {
  CoarseningConfig config;
  config.threads = 4;
  const auto h = multi_edge_collapse(graph::rmat(11, 10000, 17), config);
  EXPECT_GT(h.depth(), 1u);
  for (std::size_t i = 0; i + 1 < h.depth(); ++i) {
    const auto& map = h.map(i);
    for (vid_t target : map) {
      EXPECT_LT(target, h.graph(i + 1).num_vertices());
    }
  }
}

}  // namespace
}  // namespace gosh::coarsen
