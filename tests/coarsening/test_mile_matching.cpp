// MILE-style SEM+NHEM coarsening invariants.
#include <gtest/gtest.h>

#include <set>

#include "gosh/coarsening/mile_matching.hpp"
#include "gosh/graph/builder.hpp"
#include "gosh/graph/generators.hpp"

namespace gosh::coarsen {
namespace {

TEST(WeightedGraph, FromGraphUnitWeights) {
  const auto g = graph::cycle_graph(10);
  const auto w = WeightedGraph::from_graph(g);
  EXPECT_EQ(w.num_vertices(), 10u);
  EXPECT_EQ(w.num_arcs(), g.num_arcs());
  for (float weight : w.weights) EXPECT_FLOAT_EQ(weight, 1.0f);
  EXPECT_FLOAT_EQ(w.weighted_degree(0), 2.0f);
}

TEST(WeightedGraph, UnweightedRoundTrip) {
  const auto g = graph::rmat(8, 500, 3);
  EXPECT_EQ(WeightedGraph::from_graph(g).unweighted(), g);
}

TEST(MileLevel, MatchingAtMostHalves) {
  const auto g = graph::cycle_graph(64);
  const auto level =
      mile_coarsen_level(WeightedGraph::from_graph(g), 1);
  // A perfect matching halves the cycle; SEM cannot help (all distinct
  // neighbourhoods), so the floor is n/2.
  EXPECT_GE(level.coarse.num_vertices(), 32u);
}

TEST(MileLevel, MapIsValidPartition) {
  const auto g = graph::rmat(9, 2000, 4);
  const auto level = mile_coarsen_level(WeightedGraph::from_graph(g), 2);
  std::set<vid_t> used;
  for (vid_t super : level.map) {
    ASSERT_LT(super, level.coarse.num_vertices());
    used.insert(super);
  }
  EXPECT_EQ(used.size(), level.coarse.num_vertices());
}

TEST(MileLevel, SuperVertexHasAtMostTwoGroups) {
  // Count fine vertices per super vertex on a graph without structural
  // equivalence (cycle): must be 1 or 2 (a matching).
  const auto g = graph::cycle_graph(101);
  const auto level = mile_coarsen_level(WeightedGraph::from_graph(g), 5);
  std::vector<unsigned> members(level.coarse.num_vertices(), 0);
  for (vid_t super : level.map) members[super]++;
  for (unsigned count : members) EXPECT_LE(count, 2u);
}

TEST(MileLevel, SemCollapsesTwins) {
  // Star leaves all share the neighbourhood {hub}: SEM should group them,
  // so the coarse graph is far smaller than a matching could reach.
  const auto g = graph::star_graph(40);
  const auto level = mile_coarsen_level(WeightedGraph::from_graph(g), 6);
  EXPECT_LE(level.coarse.num_vertices(), 2u);
}

TEST(MileLevel, WeightsAccumulate) {
  // Two vertices merging share an external neighbour -> the coarse edge
  // carries weight 2.
  //   0-2, 1-2, 0-1 ; matching merges 0,1 (heaviest normalized edge).
  graph::Graph g = graph::build_csr(3, {{0, 1}, {0, 2}, {1, 2}});
  const auto level = mile_coarsen_level(WeightedGraph::from_graph(g), 7);
  ASSERT_EQ(level.coarse.num_vertices(), 2u);
  // The surviving edge aggregates both fine edges.
  float max_weight = 0.0f;
  for (float w : level.coarse.weights) max_weight = std::max(max_weight, w);
  EXPECT_FLOAT_EQ(max_weight, 2.0f);
}

TEST(MileHierarchy, RunsRequestedLevels) {
  const auto h = mile_coarsen(graph::rmat(10, 3000, 8), 5, 1);
  EXPECT_EQ(h.graphs.size(), 6u);  // original + 5
  EXPECT_EQ(h.maps.size(), 5u);
  EXPECT_EQ(h.level_seconds.size(), 5u);
  for (std::size_t i = 0; i + 1 < h.graphs.size(); ++i) {
    EXPECT_LE(h.graphs[i + 1].num_vertices(), h.graphs[i].num_vertices());
  }
}

TEST(MileHierarchy, ShrinksSlowerThanGosh) {
  // The Table 5 story: matching shrink per level is bounded by 2x (plus
  // SEM), while GOSH clustering shrinks several-fold.
  const auto g = graph::rmat(11, 10000, 9);
  const auto mile = mile_coarsen(g, 3, 1);
  const double mile_shrink =
      static_cast<double>(g.num_vertices()) /
      mile.graphs.back().num_vertices();
  EXPECT_LT(mile_shrink, 10.0);  // 3 levels of <=2x + SEM
}

}  // namespace
}  // namespace gosh::coarsen
