// Degree-descending visit order.
#include <gtest/gtest.h>

#include "gosh/coarsening/order.hpp"
#include "gosh/graph/generators.hpp"

namespace gosh::coarsen {
namespace {

TEST(DegreeOrder, StarHubFirst) {
  const auto order = degree_order_descending(graph::star_graph(10));
  EXPECT_EQ(order[0], 0u);
}

TEST(DegreeOrder, DescendingDegrees) {
  graph::Graph g = graph::rmat(10, 4000, 3);
  const auto order = degree_order_descending(g);
  ASSERT_EQ(order.size(), g.num_vertices());
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(g.degree(order[i - 1]), g.degree(order[i]));
  }
}

TEST(DegreeOrder, IsAPermutation) {
  graph::Graph g = graph::erdos_renyi(500, 2000, 4);
  auto order = degree_order_descending(g);
  std::sort(order.begin(), order.end());
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], static_cast<vid_t>(i));
  }
}

TEST(DegreeOrder, TiesKeepIdOrder) {
  // Cycle: all degrees equal, stability => identity order.
  const auto order = degree_order_descending(graph::cycle_graph(20));
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], static_cast<vid_t>(i));
  }
}

}  // namespace
}  // namespace gosh::coarsen
