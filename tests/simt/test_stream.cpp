// Stream FIFO ordering, events, synchronization, cross-stream overlap.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "gosh/simt/stream.hpp"

namespace gosh::simt {
namespace {

TEST(Stream, ExecutesInFifoOrder) {
  Stream stream;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    stream.enqueue([&order, i] { order.push_back(i); });
  }
  stream.synchronize();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(Stream, SynchronizeDrains) {
  Stream stream;
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) {
    stream.enqueue([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done.fetch_add(1);
    });
  }
  stream.synchronize();
  EXPECT_EQ(done.load(), 10);
}

TEST(Stream, EventSignalsAfterPriorWork) {
  Stream stream;
  std::atomic<bool> work_done{false};
  stream.enqueue([&work_done] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    work_done.store(true);
  });
  Event event = stream.record();
  event.wait();
  EXPECT_TRUE(work_done.load());
  EXPECT_TRUE(event.ready());
}

TEST(Stream, EventNotReadyBeforeExecution) {
  Stream stream;
  std::atomic<bool> release{false};
  stream.enqueue([&release] {
    while (!release.load()) std::this_thread::yield();
  });
  Event event = stream.record();
  EXPECT_FALSE(event.ready());
  release.store(true);
  event.wait();
  EXPECT_TRUE(event.ready());
}

TEST(Stream, TwoStreamsRunConcurrently) {
  Stream a, b;
  std::atomic<bool> a_started{false};
  std::atomic<bool> b_observed{false};
  a.enqueue([&] {
    a_started.store(true);
    // Hold stream a busy until b proves it ran concurrently.
    for (int i = 0; i < 1000 && !b_observed.load(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  b.enqueue([&] {
    while (!a_started.load()) std::this_thread::yield();
    b_observed.store(true);
  });
  a.synchronize();
  b.synchronize();
  EXPECT_TRUE(b_observed.load());
}

TEST(Stream, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    Stream stream;
    for (int i = 0; i < 20; ++i) stream.enqueue([&done] { done.fetch_add(1); });
  }
  EXPECT_EQ(done.load(), 20);
}

TEST(Stream, SynchronizeOnEmptyStreamReturns) {
  Stream stream;
  stream.synchronize();  // must not hang
  SUCCEED();
}

}  // namespace
}  // namespace gosh::simt
