// Device emulation: capacity metering, warp execution, shared memory,
// launch serialization.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "gosh/common/aligned_buffer.hpp"
#include "gosh/simt/device.hpp"

namespace gosh::simt {
namespace {

DeviceConfig small_config(std::size_t bytes = 1 << 20, unsigned workers = 2) {
  DeviceConfig config;
  config.memory_bytes = bytes;
  config.workers = workers;
  return config;
}

TEST(DeviceMemory, AllocationIsMetered) {
  Device device(small_config());
  EXPECT_EQ(device.memory_used(), 0u);
  {
    DeviceBuffer<float> buffer(device, 1000);
    EXPECT_GE(device.memory_used(), 1000 * sizeof(float));
    EXPECT_LE(device.memory_used(), 1000 * sizeof(float) + kCacheLine);
  }
  EXPECT_EQ(device.memory_used(), 0u);  // RAII released
}

TEST(DeviceMemory, OutOfMemoryThrows) {
  Device device(small_config(4096));
  EXPECT_THROW(DeviceBuffer<float> big(device, 1 << 20), DeviceOutOfMemory);
  // The failed allocation must not leak metered bytes.
  EXPECT_EQ(device.memory_used(), 0u);
}

TEST(DeviceMemory, ExceptionCarriesSizes) {
  Device device(small_config(1024));
  try {
    DeviceBuffer<double> big(device, 1 << 20);
    FAIL() << "expected DeviceOutOfMemory";
  } catch (const DeviceOutOfMemory& oom) {
    EXPECT_GE(oom.requested(), (1 << 20) * sizeof(double));
    EXPECT_LE(oom.free_bytes(), 1024u);
  }
}

TEST(DeviceMemory, FillsToCapacityThenFrees) {
  Device device(small_config(1 << 16));
  std::vector<DeviceBuffer<std::byte>> buffers;
  for (int i = 0; i < 16; ++i) buffers.emplace_back(device, 4096 - kCacheLine);
  EXPECT_THROW(DeviceBuffer<std::byte> extra(device, 4096), DeviceOutOfMemory);
  buffers.pop_back();
  DeviceBuffer<std::byte> extra(device, 2048);  // fits again
  SUCCEED();
}

TEST(DeviceLaunch, ExecutesEveryWarpExactlyOnce) {
  Device device(small_config());
  constexpr std::size_t kWarps = 10000;
  std::vector<std::atomic<int>> executed(kWarps);
  device.launch_blocking(kWarps, 0, [&executed](const WarpContext& ctx) {
    executed[ctx.warp_id].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t w = 0; w < kWarps; ++w) {
    ASSERT_EQ(executed[w].load(), 1) << "warp " << w;
  }
}

TEST(DeviceLaunch, ZeroWarpsIsNoop) {
  Device device(small_config());
  device.launch_blocking(0, 0, [](const WarpContext&) { FAIL(); });
}

TEST(DeviceLaunch, SharedMemoryIsWarpPrivate) {
  Device device(small_config());
  // Each warp writes a pattern then verifies it survives its own body —
  // concurrent warps must not see each other's arena.
  std::atomic<int> corruptions{0};
  device.launch_blocking(2000, 256, [&corruptions](const WarpContext& ctx) {
    ASSERT_NE(ctx.shared, nullptr);
    ASSERT_GE(ctx.shared_bytes, 256u);
    std::memset(ctx.shared, static_cast<int>(ctx.warp_id & 0xff), 256);
    // Busy work to increase overlap.
    int spin = 0;
    for (int i = 0; i < 50; ++i) spin += i;
    ASSERT_EQ(spin, 1225);  // also keeps the loop from folding away
    for (int i = 0; i < 256; ++i) {
      if (ctx.shared[i] != static_cast<std::byte>(ctx.warp_id & 0xff)) {
        corruptions.fetch_add(1);
        break;
      }
    }
  });
  EXPECT_EQ(corruptions.load(), 0);
}

TEST(DeviceLaunch, RejectsOversizedSharedRequest) {
  DeviceConfig config = small_config();
  config.max_shared_bytes = 128;
  Device device(config);
  EXPECT_THROW(
      device.launch_blocking(1, 256, [](const WarpContext&) {}),
      std::invalid_argument);
}

TEST(DeviceLaunch, SequentialLaunchesAreOrdered) {
  Device device(small_config());
  std::vector<int> values(100, 0);
  device.launch_blocking(100, 0, [&values](const WarpContext& ctx) {
    values[ctx.warp_id] = 1;
  });
  device.launch_blocking(100, 0, [&values](const WarpContext& ctx) {
    values[ctx.warp_id] += 1;  // must observe the first launch's writes
  });
  for (int v : values) EXPECT_EQ(v, 2);
}

TEST(DeviceLaunch, ConcurrentLaunchersSerialize) {
  Device device(small_config());
  // Warps of different launches must never interleave: each launch claims
  // a shared slot with its id; seeing another launch's id inside a warp
  // means two kernels overlapped.
  std::atomic<int> active_launch{0};
  std::atomic<int> active_warps{0};
  std::atomic<bool> overlap{false};
  auto launcher = [&](int launcher_id) {
    for (int i = 0; i < 20; ++i) {
      const int launch_id = launcher_id * 1000 + i + 1;
      device.launch_blocking(50, 0, [&, launch_id](const WarpContext&) {
        int expected = 0;
        if (!active_launch.compare_exchange_strong(expected, launch_id) &&
            expected != launch_id) {
          overlap.store(true);
        }
        active_warps.fetch_add(1);
        if (active_warps.fetch_sub(1) == 1) {
          // Last warp out clears the slot (best effort; benign race with
          // warps of the SAME launch, which re-claim the same id).
          int mine = launch_id;
          active_launch.compare_exchange_strong(mine, 0);
        }
      });
    }
  };
  std::thread a(launcher, 1), b(launcher, 2);
  a.join();
  b.join();
  EXPECT_FALSE(overlap.load());
}

TEST(DeviceMetrics, CountsKernelsAndWarps) {
  Device device(small_config());
  device.metrics().reset();
  device.launch_blocking(64, 0, [](const WarpContext&) {});
  device.launch_blocking(36, 0, [](const WarpContext&) {});
  const auto snap = device.metrics().snapshot();
  EXPECT_EQ(snap.kernels_launched, 2u);
  EXPECT_EQ(snap.warps_executed, 100u);
}

TEST(DeviceMetrics, TransfersAreMetered) {
  Device device(small_config());
  device.metrics().reset();
  DeviceBuffer<float> buffer(device, 256);
  std::vector<float> host(256, 1.0f);
  buffer.copy_from_host(std::span<const float>(host));
  buffer.copy_to_host(std::span<float>(host));
  const auto snap = device.metrics().snapshot();
  EXPECT_EQ(snap.h2d_bytes, 256 * sizeof(float));
  EXPECT_EQ(snap.d2h_bytes, 256 * sizeof(float));
}

TEST(DeviceBuffer, OffsetTransfers) {
  Device device(small_config());
  DeviceBuffer<int> buffer(device, 10);
  std::vector<int> front = {1, 2, 3};
  std::vector<int> back = {7, 8};
  buffer.copy_from_host(std::span<const int>(front), 0);
  buffer.copy_from_host(std::span<const int>(back), 8);
  std::vector<int> out(2);
  buffer.copy_to_host(std::span<int>(out), 8);
  EXPECT_EQ(out[0], 7);
  EXPECT_EQ(out[1], 8);
}

TEST(DeviceBuffer, MoveTransfersOwnership) {
  Device device(small_config());
  DeviceBuffer<int> a(device, 100);
  const std::size_t used = device.memory_used();
  DeviceBuffer<int> b = std::move(a);
  EXPECT_EQ(device.memory_used(), used);  // no double-charge
  EXPECT_EQ(b.size(), 100u);
  EXPECT_TRUE(a.empty());
}

class DeviceWorkerCountTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(DeviceWorkerCountTest, AllWarpsRunUnderAnyWorkerCount) {
  Device device(small_config(1 << 20, GetParam()));
  std::atomic<std::size_t> count{0};
  device.launch_blocking(997, 0, [&count](const WarpContext&) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 997u);
}

INSTANTIATE_TEST_SUITE_P(Workers, DeviceWorkerCountTest,
                         ::testing::Values(1, 2, 3, 4, 8));

}  // namespace
}  // namespace gosh::simt
