// Device stress: concurrent allocation + launches, allocation failure
// injection mid-pipeline, rapid create/destroy cycles.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "gosh/simt/device.hpp"
#include "gosh/simt/stream.hpp"

namespace gosh::simt {
namespace {

TEST(DeviceStress, ConcurrentAllocationsRespectCapacity) {
  DeviceConfig config;
  config.memory_bytes = 1 << 20;
  config.workers = 2;
  Device device(config);

  std::atomic<int> successes{0};
  std::atomic<int> failures{0};
  auto worker = [&] {
    for (int i = 0; i < 200; ++i) {
      try {
        DeviceBuffer<std::byte> buffer(device, 16 << 10);
        successes.fetch_add(1);
      } catch (const DeviceOutOfMemory&) {
        failures.fetch_add(1);
      }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) threads.emplace_back(worker);
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(successes.load() + failures.load(), 800);
  // Everything released: the meter must return to zero.
  EXPECT_EQ(device.memory_used(), 0u);
}

TEST(DeviceStress, LaunchesInterleavedWithTransfers) {
  DeviceConfig config;
  config.memory_bytes = 8 << 20;
  config.workers = 2;
  Device device(config);
  DeviceBuffer<int> data(device, 1024);
  std::vector<int> host(1024, 0);
  // Zero the buffer before racing: a fresh allocation holds arbitrary
  // bytes (ASan poisons it with a fill pattern), and the 0<=sum<=64
  // invariant below only holds once every element is a raced 0/1.
  data.copy_from_host(std::span<const int>(host));

  std::atomic<bool> stop{false};
  std::thread copier([&] {
    std::vector<int> scratch(1024, 1);
    while (!stop.load()) {
      data.copy_from_host(std::span<const int>(scratch));
    }
  });

  for (int i = 0; i < 200; ++i) {
    std::atomic<long> sum{0};
    device.launch_blocking(64, 0, [&](const WarpContext& ctx) {
      sum.fetch_add(data.data()[ctx.warp_id], std::memory_order_relaxed);
    });
    // Values are racing 0/1 writes; the invariant is no crash and a sum
    // within bounds.
    EXPECT_GE(sum.load(), 0);
    EXPECT_LE(sum.load(), 64);
  }
  stop.store(true);
  copier.join();
}

TEST(DeviceStress, RapidCreateDestroyCycles) {
  for (int cycle = 0; cycle < 30; ++cycle) {
    DeviceConfig config;
    config.memory_bytes = 1 << 20;
    config.workers = 2;
    Device device(config);
    std::atomic<int> ran{0};
    device.launch_blocking(8, 64, [&ran](const WarpContext&) {
      ran.fetch_add(1);
    });
    ASSERT_EQ(ran.load(), 8);
  }
}

TEST(DeviceStress, ManyStreamsDrainCleanly) {
  constexpr int kStreams = 8;
  std::vector<std::unique_ptr<Stream>> streams;
  std::atomic<int> total{0};
  for (int s = 0; s < kStreams; ++s) {
    streams.push_back(std::make_unique<Stream>());
  }
  for (int round = 0; round < 50; ++round) {
    for (auto& stream : streams) {
      stream->enqueue([&total] { total.fetch_add(1); });
    }
  }
  for (auto& stream : streams) stream->synchronize();
  EXPECT_EQ(total.load(), kStreams * 50);
}

TEST(DeviceStress, OomDuringPipelineLeavesDeviceUsable) {
  DeviceConfig config;
  config.memory_bytes = 256 << 10;
  config.workers = 1;
  Device device(config);

  DeviceBuffer<float> resident(device, 32 << 10);  // 128 KiB
  EXPECT_THROW(DeviceBuffer<float> big(device, 64 << 10),  // 256 KiB more
               DeviceOutOfMemory);

  // The device must still execute work and accept fitting allocations.
  std::atomic<int> ran{0};
  device.launch_blocking(4, 0, [&ran](const WarpContext&) {
    ran.fetch_add(1);
  });
  EXPECT_EQ(ran.load(), 4);
  DeviceBuffer<float> small(device, 1024);
  EXPECT_EQ(small.size(), 1024u);
}

}  // namespace
}  // namespace gosh::simt
