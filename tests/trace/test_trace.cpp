// gosh::trace — spans, sampling, the completed-trace ring, and the Chrome
// trace_event export. The cross-thread and concurrent-writer tests run
// under the ThreadSanitizer CI job (suite names Trace* are in the TSan
// filter). Every Tracer here is a local instance, but configure() flips
// the process-wide enabled() gate, so each test restores a disabled state
// on the way out (TracerGuard).
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gosh/net/json.hpp"
#include "gosh/query/batch_queue.hpp"
#include "gosh/trace/trace.hpp"

namespace gosh::trace {
namespace {

/// Restores the disabled default on scope exit: configure() is last-wins
/// on the global gate, and a test leaking enabled()=true would make every
/// later suite pay tracing costs (and record into dead traces).
struct TracerGuard {
  ~TracerGuard() { set_enabled(false); }
};

TraceOptions sample_all() {
  TraceOptions options;
  options.sample_rate = 1.0;
  return options;
}

TEST(Trace, SpansNestAndRecordInCompletionOrder) {
  TracerGuard guard;
  Tracer tracer(sample_all());
  std::shared_ptr<Trace> trace = tracer.begin("req-1");
  ASSERT_NE(trace, nullptr);
  {
    ScopedTrace scope(trace);
    Span outer("outer");
    {
      Span inner("inner");
    }
    Span sibling("sibling");
  }
  tracer.finish(trace);

  const std::vector<SpanRecord> spans = trace->spans();
  ASSERT_EQ(spans.size(), 3u);
  // RAII records at destruction: inner completes first, outer last.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[1].name, "sibling");
  EXPECT_EQ(spans[2].name, "outer");
  EXPECT_EQ(spans[2].depth, 0u);
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_EQ(spans[1].depth, 1u);
  // Containment: outer spans both children on the clock.
  EXPECT_LE(spans[2].begin_ns, spans[0].begin_ns);
  EXPECT_GE(spans[2].end_ns, spans[1].end_ns);
  EXPECT_EQ(tracer.kept(), 1u);
}

TEST(Trace, SpansAreInertWithoutAnInstalledTrace) {
  TracerGuard guard;
  Tracer tracer(sample_all());  // enabled, but no ScopedTrace installed
  {
    Span span("orphan");
  }
  set_enabled(false);
  {
    TRACE_SPAN("disabled");
  }
  EXPECT_EQ(tracer.kept(), 0u);
}

TEST(Trace, BatchQueueHandoffRecordsQueueWaitAndScanIntoTheTrace) {
  TracerGuard guard;
  // The serving shape end to end: a traced caller submits to the
  // BatchQueue, the dispatcher thread records queue-wait/scan spans into
  // the caller's trace across the thread handoff.
  embedding::EmbeddingMatrix matrix(64, 8);
  matrix.initialize_random(23);
  const std::string path = ::testing::TempDir() + "trace_queue_" +
                           std::to_string(::getpid()) + ".gshs";
  ASSERT_TRUE(store::EmbeddingStore::write(matrix, path).is_ok());
  auto opened = store::EmbeddingStore::open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().to_string();
  query::QueryEngine engine(std::move(opened).value(), {});

  Tracer tracer(sample_all());
  std::shared_ptr<Trace> trace = tracer.begin("req-queue");
  ASSERT_NE(trace, nullptr);
  {
    ScopedTrace scope(trace);
    Span handler("handler");
    query::BatchQueue queue(engine);
    auto future = queue.submit(std::vector<float>(engine.dim(), 0.5f));
    EXPECT_EQ(future.get().size(), 10u);
  }
  tracer.finish(trace);
  std::remove(path.c_str());

  std::set<std::string> names;
  std::uint32_t handler_thread = 0, scan_thread = 0;
  std::uint64_t wait_begin = 0, wait_end = 0, scan_begin = 0;
  for (const SpanRecord& span : trace->spans()) {
    names.insert(span.name);
    if (span.name == "handler") handler_thread = span.thread;
    if (span.name == "scan") {
      scan_thread = span.thread;
      scan_begin = span.begin_ns;
    }
    if (span.name == "queue-wait") {
      wait_begin = span.begin_ns;
      wait_end = span.end_ns;
    }
  }
  EXPECT_TRUE(names.count("handler"));
  ASSERT_TRUE(names.count("queue-wait"));
  ASSERT_TRUE(names.count("scan"));
  // The dispatcher is a different thread, and the phases abut in order.
  EXPECT_NE(handler_thread, scan_thread);
  EXPECT_LE(wait_begin, wait_end);
  EXPECT_EQ(wait_end, scan_begin);
}

TEST(Trace, RingWrapsUnderConcurrentWriters) {
  TracerGuard guard;
  TraceOptions options = sample_all();
  options.capacity = 8;
  Tracer tracer(options);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&tracer, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::string id = "w";
        id += std::to_string(t);
        id += '-';
        id += std::to_string(i);
        std::shared_ptr<Trace> trace = tracer.begin(id);
        ASSERT_NE(trace, nullptr);
        ScopedTrace scope(trace);
        {
          TRACE_SPAN("work");
        }
        tracer.finish(trace);
      }
    });
  }
  for (std::thread& t : writers) t.join();

  EXPECT_EQ(tracer.finished(), kThreads * kPerThread);
  EXPECT_EQ(tracer.kept(), kThreads * kPerThread);
  const auto snapshot = tracer.snapshot();
  ASSERT_EQ(snapshot.size(), 8u);  // capacity, not everything kept
  for (const auto& trace : snapshot) {
    ASSERT_NE(trace, nullptr);
    EXPECT_EQ(trace->spans().size(), 1u);
    EXPECT_GT(trace->end_ns(), 0u);
  }
}

TEST(Trace, SeededSamplerIsDeterministicAndRespectsTheRate) {
  TracerGuard guard;
  TraceOptions options;
  options.sample_rate = 0.25;
  options.seed = 7;

  const auto decisions = [&options](std::size_t n) {
    Tracer tracer(options);
    std::vector<bool> kept;
    for (std::size_t i = 0; i < n; ++i) {
      std::string id = "r";
      id += std::to_string(i);
      std::shared_ptr<Trace> trace = tracer.begin(id);
      kept.push_back(trace != nullptr);
      tracer.finish(trace);  // null-safe
    }
    return kept;
  };

  const std::vector<bool> first = decisions(400);
  EXPECT_EQ(first, decisions(400));  // same seed + order -> same picks

  const std::size_t picked =
      static_cast<std::size_t>(std::count(first.begin(), first.end(), true));
  EXPECT_GT(picked, 50u);   // ~100 expected at rate 0.25
  EXPECT_LT(picked, 160u);

  options.seed = 8;
  EXPECT_NE(first, decisions(400));  // a different seed picks differently
}

TEST(Trace, SlowRequestsAreKeptEvenWhenSamplingSaysNo) {
  TracerGuard guard;
  TraceOptions options;
  options.sample_rate = 0.0;
  options.slow_ms = 0.0001;  // everything is "slow" at 100ns
  Tracer tracer(options);

  std::shared_ptr<Trace> trace = tracer.begin("slow-1");
  ASSERT_NE(trace, nullptr);  // slow_ms keeps the trace alive past begin()
  EXPECT_FALSE(trace->sampled());
  tracer.finish(trace);
  EXPECT_EQ(tracer.kept(), 1u);
}

TEST(Trace, ExportIsStrictJsonEvenWithHostileRequestIds) {
  TracerGuard guard;
  Tracer tracer(sample_all());
  // sanitize_request_id is the wire-facing guard; the export must still be
  // valid JSON for whatever string a direct caller passes.
  std::shared_ptr<Trace> trace =
      tracer.begin("quote\"back\\slash\x01tab\tid");
  ASSERT_NE(trace, nullptr);
  trace->set_label("POST /v1/query");
  {
    ScopedTrace scope(trace);
    TRACE_SPAN("scan");
  }
  tracer.finish(trace);

  const std::string exported = tracer.export_chrome_json();
  auto parsed = net::json::Value::parse(exported);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string() << "\n" << exported;
  const net::json::Value& root = parsed.value();
  ASSERT_NE(root.find("displayTimeUnit"), nullptr);
  const net::json::Value* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // process_name metadata + root request event + one span.
  ASSERT_EQ(events->size(), 3u);
  for (std::size_t i = 0; i < events->size(); ++i) {
    const net::json::Value& event = (*events)[i];
    ASSERT_NE(event.find("ph"), nullptr);
    ASSERT_NE(event.find("pid"), nullptr);
    if (event.find("ph")->as_string() == "X") {
      ASSERT_NE(event.find("ts"), nullptr);
      ASSERT_NE(event.find("dur"), nullptr);
      EXPECT_GE(event.find("dur")->as_number(), 0.0);
      ASSERT_NE(event.find("args"), nullptr);
      ASSERT_NE(event.find("args")->find("request_id"), nullptr);
    }
  }
  // The hostile id survived the round-trip (escaped, not mangled).
  EXPECT_NE(exported.find("quote\\\"back\\\\slash"), std::string::npos);
}

TEST(Trace, SanitizeRequestIdScrubsAndCaps) {
  EXPECT_EQ(sanitize_request_id("plain-id-42"), "plain-id-42");
  EXPECT_EQ(sanitize_request_id("a b\"c\\d\x7fz"), "a_b_c_d_z");
  EXPECT_EQ(sanitize_request_id(std::string(300, 'x')).size(), 128u);
  // Empty mints instead of passing emptiness through.
  EXPECT_EQ(sanitize_request_id("").substr(0, 5), "gosh-");
}

TEST(Trace, MintedRequestIdsAreUnique) {
  std::set<std::string> ids;
  for (int i = 0; i < 1000; ++i) ids.insert(mint_request_id());
  EXPECT_EQ(ids.size(), 1000u);
}

TEST(Trace, PerTraceSpanCapSurfacesAsDroppedCount) {
  TracerGuard guard;
  Tracer tracer(sample_all());
  std::shared_ptr<Trace> trace = tracer.begin("cap");
  ASSERT_NE(trace, nullptr);
  for (std::size_t i = 0; i < Trace::kMaxSpans + 10; ++i) {
    trace->record("s", 1, 2);
  }
  tracer.finish(trace);
  EXPECT_EQ(trace->spans().size(), Trace::kMaxSpans);
  EXPECT_EQ(trace->dropped(), 10u);
  // The export names the truncation.
  EXPECT_NE(tracer.export_chrome_json().find("\"dropped_spans\":10"),
            std::string::npos);
}

}  // namespace
}  // namespace gosh::trace
