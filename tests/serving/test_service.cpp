// QueryService — the serving facade's request model over every registry
// strategy: exact vs reference, per-request overrides, multi-vector and
// filtered queries, hnsw/batched agreement, registry policies, and
// concurrent serving (suite QueryService* is in the TSan CI filter).
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "gosh/query/brute_force.hpp"
#include "gosh/serving/registry.hpp"

namespace gosh::serving {
namespace {

/// A 3-shard store of random rows plus its HNSW index, cleaned up on exit.
struct Fixture {
  std::string store_path;
  std::uint32_t shard_count;
  vid_t rows;
  unsigned dim;

  explicit Fixture(vid_t rows_in = 120, unsigned dim_in = 8,
                   std::uint64_t seed = 29)
      : rows(rows_in), dim(dim_in) {
    embedding::EmbeddingMatrix matrix(rows, dim);
    matrix.initialize_random(seed);
    store_path = testing::TempDir() + "service_" +
                 std::to_string(::getpid()) + "_" + std::to_string(rows) +
                 "_" + std::to_string(seed) + ".gshs";
    const std::uint64_t per_shard = rows / 3 + 1;
    shard_count =
        static_cast<std::uint32_t>((rows + per_shard - 1) / per_shard);
    EXPECT_TRUE(store::EmbeddingStore::write(matrix, store_path,
                                             {.rows_per_shard = per_shard})
                    .is_ok());
  }

  ServeOptions options() const {
    ServeOptions serve;
    serve.store_path = store_path;
    serve.k = 10;
    return serve;
  }

  void build_hnsw_index(unsigned ef_construction = 200) {
    ServeOptions serve = options();
    serve.ef_construction = ef_construction;
    auto report = serving::build_index(serve);
    ASSERT_TRUE(report.ok()) << report.status().to_string();
  }

  ~Fixture() {
    for (std::uint32_t s = 0; s < shard_count; ++s) {
      std::remove(
          store::EmbeddingStore::shard_path(store_path, s, shard_count)
              .c_str());
    }
    std::remove((store_path + ".hnsw").c_str());
  }
};

std::vector<query::Neighbor> reference_top_k(const std::string& store_path,
                                             std::span<const float> vec,
                                             unsigned k, query::Metric metric) {
  auto opened = store::EmbeddingStore::open(store_path);
  EXPECT_TRUE(opened.ok());
  const auto inv = query::row_inverse_norms(opened.value(), metric);
  return query::scan_top_k(opened.value(), vec, k, metric, inv).value();
}

TEST(QueryService, ExactServiceMatchesTheRawScan) {
  Fixture fx;
  ServeOptions options = fx.options();
  options.strategy = "exact";
  auto service = make_service(options);
  ASSERT_TRUE(service.ok()) << service.status().to_string();
  EXPECT_EQ(service.value()->rows(), fx.rows);
  EXPECT_EQ(service.value()->strategy_name(), "exact");

  auto row = service.value()->row_vector(42);
  ASSERT_TRUE(row.ok());
  const auto expected =
      reference_top_k(fx.store_path, row.value(), 10, query::Metric::kCosine);
  auto got = service.value()->top_k(row.value(), 10);
  ASSERT_TRUE(got.ok()) << got.status().to_string();
  ASSERT_EQ(got.value().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(got.value()[i].id, expected[i].id) << "rank " << i;
  }
}

TEST(QueryService, VertexQueriesExcludeTheProbeItself) {
  Fixture fx;
  auto service = make_service(fx.options());
  ASSERT_TRUE(service.ok());
  auto top = service.value()->top_k_vertex(17, 10);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top.value().size(), 10u);
  for (const query::Neighbor& n : top.value()) EXPECT_NE(n.id, 17u);
}

TEST(QueryService, PerRequestKEfAndMetricOverridesApply) {
  Fixture fx;
  ServeOptions options = fx.options();
  options.strategy = "exact";
  options.metric = query::Metric::kCosine;
  auto service = make_service(options);
  ASSERT_TRUE(service.ok());

  auto row = service.value()->row_vector(3);
  ASSERT_TRUE(row.ok());

  // k override: the request beats the service default.
  QueryRequest request = QueryRequest::for_vector(row.value(), 4);
  auto small = service.value()->serve(request);
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small.value().results.front().size(), 4u);

  // metric override: an L2 request against a cosine engine matches the
  // raw L2 scan.
  request.k = 6;
  request.metric = query::Metric::kL2;
  auto l2 = service.value()->serve(request);
  ASSERT_TRUE(l2.ok());
  const auto expected =
      reference_top_k(fx.store_path, row.value(), 6, query::Metric::kL2);
  ASSERT_EQ(l2.value().results.front().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(l2.value().results.front()[i].id, expected[i].id);
  }

  // ...and the reverse direction: a cosine override on an L2 engine (the
  // construction-time norm cache covers it).
  ServeOptions l2_options = fx.options();
  l2_options.strategy = "exact";
  l2_options.metric = query::Metric::kL2;
  auto l2_service = make_service(l2_options);
  ASSERT_TRUE(l2_service.ok());
  QueryRequest cosine_request = QueryRequest::for_vector(row.value(), 6);
  cosine_request.metric = query::Metric::kCosine;
  auto cosine = l2_service.value()->serve(cosine_request);
  ASSERT_TRUE(cosine.ok());
  const auto cosine_expected =
      reference_top_k(fx.store_path, row.value(), 6, query::Metric::kCosine);
  for (std::size_t i = 0; i < cosine_expected.size(); ++i) {
    EXPECT_EQ(cosine.value().results.front()[i].id, cosine_expected[i].id);
  }
}

TEST(QueryService, FilteredAnswersOnlyContainPassingIds) {
  Fixture fx;
  auto service = make_service(fx.options());
  ASSERT_TRUE(service.ok());
  QueryRequest request = QueryRequest::for_vertex(5, 15);
  request.filter = [](vid_t v) { return v >= 60; };
  auto response = service.value()->serve(request);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().results.front().size(), 15u);
  for (const query::Neighbor& n : response.value().results.front()) {
    EXPECT_GE(n.id, 60u);
  }
}

TEST(QueryService, MultiVectorQueriesAggregate) {
  Fixture fx;
  auto service = make_service(fx.options());
  ASSERT_TRUE(service.ok());
  auto a = service.value()->row_vector(10);
  auto b = service.value()->row_vector(90);
  ASSERT_TRUE(a.ok() && b.ok());
  std::vector<float> joint = a.value();
  joint.insert(joint.end(), b.value().begin(), b.value().end());

  QueryRequest request;
  request.queries.push_back(Query::multi(joint, 2));
  request.k = 2;
  request.aggregate = Aggregate::kMax;
  auto response = service.value()->serve(request);
  ASSERT_TRUE(response.ok());
  // Under kMax both probe rows score 1.0 (cosine with themselves), so the
  // top-2 must be exactly {10, 90}.
  std::vector<vid_t> ids;
  for (const query::Neighbor& n : response.value().results.front()) {
    ids.push_back(n.id);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<vid_t>{10, 90}));
}

TEST(QueryService, HnswServiceAgreesUnderExhaustiveBeam) {
  Fixture fx;
  fx.build_hnsw_index();
  ServeOptions options = fx.options();
  options.strategy = "hnsw";
  options.ef_search = 4 * fx.rows;  // beam covers the whole graph
  auto hnsw = make_service(options);
  ASSERT_TRUE(hnsw.ok()) << hnsw.status().to_string();
  EXPECT_EQ(hnsw.value()->strategy_name(), "hnsw");

  options.strategy = "exact";
  auto exact = make_service(options);
  ASSERT_TRUE(exact.ok());

  for (const vid_t probe : {0u, 41u, 119u}) {
    auto approx = hnsw.value()->top_k_vertex(probe, 8);
    auto truth = exact.value()->top_k_vertex(probe, 8);
    ASSERT_TRUE(approx.ok() && truth.ok());
    ASSERT_EQ(approx.value().size(), truth.value().size());
    for (std::size_t i = 0; i < truth.value().size(); ++i) {
      EXPECT_EQ(approx.value()[i].id, truth.value()[i].id)
          << "probe " << probe << " rank " << i;
    }
  }

  // Filtered hnsw requests only return passing ids too.
  QueryRequest request = QueryRequest::for_vertex(7, 5);
  request.filter = [](vid_t v) { return v % 3 == 0; };
  auto filtered = hnsw.value()->serve(request);
  ASSERT_TRUE(filtered.ok());
  for (const query::Neighbor& n : filtered.value().results.front()) {
    EXPECT_EQ(n.id % 3, 0u);
  }

  // A metric the index was not built for is a clean rejection.
  QueryRequest wrong = QueryRequest::for_vertex(7, 5);
  wrong.metric = query::Metric::kDot;
  auto rejected = hnsw.value()->serve(wrong);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), api::StatusCode::kInvalidArgument);
}

TEST(QueryService, BatchedServiceAgreesWithExactAndHandlesFallthrough) {
  Fixture fx;
  ServeOptions options = fx.options();
  options.strategy = "batched";
  options.max_batch = 16;
  auto batched = make_service(options);
  ASSERT_TRUE(batched.ok()) << batched.status().to_string();
  EXPECT_EQ(batched.value()->strategy_name(), "batched");

  options.strategy = "exact";
  auto exact = make_service(options);
  ASSERT_TRUE(exact.ok());

  // A queueable batch: vertex queries at the default k.
  QueryRequest request;
  for (vid_t v = 0; v < 40; ++v) request.queries.push_back(Query::vertex(v));
  auto coalesced = batched.value()->serve(request);
  auto direct = exact.value()->serve(request);
  ASSERT_TRUE(coalesced.ok() && direct.ok());
  ASSERT_EQ(coalesced.value().results.size(), direct.value().results.size());
  for (std::size_t q = 0; q < direct.value().results.size(); ++q) {
    ASSERT_EQ(coalesced.value().results[q].size(),
              direct.value().results[q].size());
    for (std::size_t i = 0; i < direct.value().results[q].size(); ++i) {
      EXPECT_EQ(coalesced.value().results[q][i].id,
                direct.value().results[q][i].id);
    }
  }

  // A filtered request cannot ride the queue; it must still be honored
  // (transparent fallthrough to the direct path).
  QueryRequest filtered = QueryRequest::for_vertex(11, 5);
  filtered.filter = [](vid_t v) { return v < 30; };
  auto fallthrough = batched.value()->serve(filtered);
  ASSERT_TRUE(fallthrough.ok());
  for (const query::Neighbor& n : fallthrough.value().results.front()) {
    EXPECT_LT(n.id, 30u);
  }
}

TEST(QueryService, MalformedRequestsAreRejectedWholesale) {
  Fixture fx;
  auto service = make_service(fx.options());
  ASSERT_TRUE(service.ok());

  QueryRequest out_of_range = QueryRequest::for_vertex(fx.rows + 5, 3);
  EXPECT_EQ(service.value()->serve(out_of_range).status().code(),
            api::StatusCode::kInvalidArgument);

  QueryRequest bad_dim =
      QueryRequest::for_vector(std::vector<float>(fx.dim + 1, 0.5f), 3);
  EXPECT_EQ(service.value()->serve(bad_dim).status().code(),
            api::StatusCode::kInvalidArgument);

  QueryRequest empty_multi;
  empty_multi.queries.push_back(Query::multi({}, 0));
  EXPECT_EQ(service.value()->serve(empty_multi).status().code(),
            api::StatusCode::kInvalidArgument);

  EXPECT_FALSE(service.value()->row_vector(fx.rows).ok());
}

TEST(QueryService, RegistryEnumeratesStrategiesAndRejectsUnknown) {
  const std::vector<std::string> names = ServiceRegistry::instance().names();
  for (const char* expected : {"auto", "batched", "exact", "hnsw", "router"}) {
    EXPECT_TRUE(ServiceRegistry::instance().contains(expected)) << expected;
  }

  Fixture fx;
  ServeOptions options = fx.options();
  auto unknown = ServiceRegistry::instance().create("warp", options);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), api::StatusCode::kNotFound);
  // kNotFound enumerates every registered name, like BackendRegistry.
  for (const std::string& name : names) {
    EXPECT_NE(unknown.status().message().find(name), std::string::npos)
        << name;
  }

  EXPECT_EQ(
      ServiceRegistry::instance().add("", [](const ServeOptions&,
                                             MetricsRegistry*)
                                              -> api::Result<
                                                  std::unique_ptr<QueryService>> {
        return api::Status::internal("unreachable");
      }).code(),
      api::StatusCode::kInvalidArgument);
  EXPECT_EQ(ServiceRegistry::instance().add("exact", nullptr).code(),
            api::StatusCode::kInvalidArgument);
}

TEST(QueryService, AutoStrategyFollowsTheIndexPresentPolicy) {
  Fixture fx;
  auto without = make_service(fx.options());
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(without.value()->strategy_name(), "exact");

  fx.build_hnsw_index(64);
  auto with = make_service(fx.options());
  ASSERT_TRUE(with.ok());
  EXPECT_EQ(with.value()->strategy_name(), "hnsw");
}

TEST(QueryService, ServicesRecordIntoTheMetricsRegistry) {
  Fixture fx;
  MetricsRegistry metrics;
  ServeOptions options = fx.options();
  options.strategy = "exact";
  auto service = make_service(options, &metrics);
  ASSERT_TRUE(service.ok());
  QueryRequest request;
  request.queries.push_back(Query::vertex(1));
  request.queries.push_back(Query::vertex(2));
  ASSERT_TRUE(service.value()->serve(request).ok());
  EXPECT_EQ(metrics.counter("gosh_serving_requests_total").value(), 1u);
  EXPECT_EQ(metrics.counter("gosh_serving_queries_total").value(), 2u);
  EXPECT_EQ(metrics.histogram("gosh_serving_request_seconds").count(), 1u);
}

TEST(QueryService, ConcurrentServeIsSafe) {
  Fixture fx(90, 6);
  for (const char* strategy : {"exact", "batched"}) {
    ServeOptions options = fx.options();
    options.strategy = strategy;
    options.threads = 2;
    options.max_batch = 8;
    auto service = make_service(options);
    ASSERT_TRUE(service.ok()) << strategy;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&service, t] {
        for (int i = 0; i < 25; ++i) {
          const vid_t probe = static_cast<vid_t>((t * 25 + i) % 90);
          auto top = service.value()->top_k_vertex(probe, 5);
          ASSERT_TRUE(top.ok());
          EXPECT_EQ(top.value().size(), 5u);
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
}

}  // namespace
}  // namespace gosh::serving
