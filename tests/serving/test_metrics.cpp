// MetricsRegistry — counters, histogram quantiles, text exposition, the
// observer adapters, and concurrent-observe safety (suite MetricsRegistry*
// is in the TSan CI filter).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "gosh/serving/metrics.hpp"

namespace gosh::serving {
namespace {

TEST(MetricsRegistry, CounterFindsOrCreatesByName) {
  MetricsRegistry registry;
  Counter& a = registry.counter("requests_total", "help text");
  a.increment();
  a.increment(4);
  EXPECT_EQ(registry.counter("requests_total").value(), 5u);
  // A different name is a different instrument.
  EXPECT_EQ(registry.counter("other_total").value(), 0u);
}

TEST(MetricsRegistry, GaugeSetsAddsAndFindsByName) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("inflight", "help text");
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(4.0);
  g.add(2.5);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(registry.gauge("inflight").value(), 5.0);
  // A different name is a different instrument; set() overwrites.
  EXPECT_DOUBLE_EQ(registry.gauge("tokens").value(), 0.0);
  g.set(-3.0);
  EXPECT_DOUBLE_EQ(g.value(), -3.0);
}

TEST(MetricsRegistry, GaugeAppearsInExpositionAsGaugeType) {
  MetricsRegistry registry;
  registry.gauge("gosh_http_inflight_connections", "open connections")
      .set(3.0);
  const std::string text = registry.expose();
  EXPECT_NE(
      text.find("# HELP gosh_http_inflight_connections open connections"),
      std::string::npos);
  EXPECT_NE(text.find("# TYPE gosh_http_inflight_connections gauge"),
            std::string::npos);
  EXPECT_NE(text.find("gosh_http_inflight_connections 3"), std::string::npos);
  EXPECT_EQ(text, registry.expose());
}

TEST(MetricsRegistry, GaugeConcurrentAddsNeverLoseAnUpdate) {
  MetricsRegistry registry;
  Gauge& gauge = registry.gauge("concurrent_level");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      // +1/-1 bracketing, the in-flight-connection pattern: the final
      // level must come back to exactly the surviving +1 per iteration.
      for (int i = 0; i < kPerThread; ++i) {
        gauge.add(2.0);
        gauge.add(-1.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_DOUBLE_EQ(gauge.value(), kThreads * kPerThread * 1.0);
}

TEST(MetricsRegistry, HistogramQuantilesInterpolateInsideBuckets) {
  MetricsRegistry registry;
  // Buckets: (0,1], (1,2], (2,4], +Inf.
  Histogram& h = registry.histogram("latency", "", {1.0, 2.0, 4.0});
  for (int i = 0; i < 100; ++i) h.observe(0.5);   // all in (0, 1]
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.sum(), 50.0, 1e-9);
  // Every observation is in the first bucket: quantiles stay within it.
  EXPECT_GT(h.quantile(0.5), 0.0);
  EXPECT_LE(h.quantile(0.5), 1.0);
  EXPECT_LE(h.quantile(0.99), 1.0);

  for (int i = 0; i < 100; ++i) h.observe(3.0);   // (2, 4]
  // p50 now sits at the first-bucket / third-bucket boundary region, p99
  // firmly in (2, 4].
  EXPECT_LE(h.quantile(0.25), 1.0);
  EXPECT_GT(h.quantile(0.99), 2.0);
  EXPECT_LE(h.quantile(0.99), 4.0);
}

TEST(MetricsRegistry, HistogramOverflowLandsInInfBucket) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("wide", "", {1.0});
  h.observe(100.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.cumulative(0), 0u);  // nothing <= 1.0
  // The +Inf bucket reports its finite lower bound.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);
}

TEST(MetricsRegistry, EmptyHistogramQuantileIsZero) {
  MetricsRegistry registry;
  EXPECT_DOUBLE_EQ(registry.histogram("empty").quantile(0.99), 0.0);
}

TEST(MetricsRegistry, ExpositionCarriesTypesBucketsAndQuantiles) {
  MetricsRegistry registry;
  registry.counter("gosh_requests_total", "served requests").increment(7);
  Histogram& h = registry.histogram("gosh_latency_seconds", "latency",
                                    {0.1, 1.0});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(5.0);

  const std::string text = registry.expose();
  EXPECT_NE(text.find("# HELP gosh_requests_total served requests"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE gosh_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("gosh_requests_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE gosh_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("gosh_latency_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("gosh_latency_seconds_bucket{le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("gosh_latency_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("gosh_latency_seconds_count 3"), std::string::npos);
  EXPECT_NE(text.find("gosh_latency_seconds_p50"), std::string::npos);
  EXPECT_NE(text.find("gosh_latency_seconds_p99"), std::string::npos);
  EXPECT_NE(text.find("gosh_latency_seconds_p999"), std::string::npos);
  // Deterministic: two dumps of the same state are byte-identical.
  EXPECT_EQ(text, registry.expose());
}

TEST(MetricsRegistry, QueryObserverAdapterStreamsServingEvents) {
  MetricsRegistry registry;
  MetricsQueryObserver observer(registry);
  observer.on_batch(16, 0.01);
  observer.on_batch(8, 0.02);
  observer.on_query(0.001);
  observer.on_query(0.002);
  observer.on_query(0.003);
  EXPECT_EQ(registry.counter("gosh_serving_batches_total").value(), 2u);
  EXPECT_EQ(registry.counter("gosh_serving_batch_queries_total").value(), 24u);
  EXPECT_EQ(registry.histogram("gosh_serving_batch_seconds").count(), 2u);
  EXPECT_EQ(
      registry.histogram("gosh_serving_request_latency_seconds").count(), 3u);
}

TEST(MetricsRegistry, ProgressObserverAdapterStreamsTrainingEvents) {
  MetricsRegistry registry;
  MetricsProgressObserver observer(registry);
  observer.on_epoch(0, 0, 10);
  observer.on_epoch(0, 1, 10);
  observer.on_pair(0, 0, 0, 6);
  observer.on_level_end({}, 1.5);
  observer.on_pipeline_end(3.0);
  EXPECT_EQ(registry.counter("gosh_train_epochs_total").value(), 2u);
  EXPECT_EQ(registry.counter("gosh_train_pair_kernels_total").value(), 1u);
  EXPECT_EQ(registry.histogram("gosh_train_level_seconds").count(), 1u);
  EXPECT_EQ(registry.histogram("gosh_train_pipeline_seconds").count(), 1u);
}

TEST(MetricsRegistry, ConcurrentObservationsAreAccountedExactly) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("concurrent_total");
  Histogram& histogram = registry.histogram("concurrent_seconds", "", {1.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &counter, &histogram] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.increment();
        histogram.observe(0.5);
        // Concurrent lookups must also be safe, not just observes.
        registry.counter("concurrent_total");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(histogram.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_NEAR(histogram.sum(), kThreads * kPerThread * 0.5, 1e-6);
}

}  // namespace
}  // namespace gosh::serving
