// DistRouter — scatter to remote shard children must be indistinguishable
// from the in-process Router when every shard answers, degrade to an
// annotated partial merge when one dies, and recover bit-identically once
// the child is back (suite DistRouter* is in the TSan CI filter).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "child_server.hpp"
#include "gosh/serving/dist_router.hpp"
#include "gosh/serving/router.hpp"

namespace gosh::serving {
namespace {

/// The test_router fixture shape: one matrix written sharded (3 shards)
/// and flat, with deliberate cross-shard duplicate rows so merges carry
/// score ties the (score desc, id asc) order must break identically on
/// both sides of the wire.
struct DistFixture {
  std::string sharded_path;
  std::string flat_path;
  std::uint32_t shard_count;
  vid_t rows;
  unsigned dim;

  explicit DistFixture(vid_t rows_in = 99, unsigned dim_in = 7)
      : rows(rows_in), dim(dim_in) {
    embedding::EmbeddingMatrix matrix(rows, dim);
    matrix.initialize_random(31);
    const vid_t third = rows / 3;
    for (vid_t v = 0; v + third < rows; v += 10) {
      const auto src = matrix.row(v);
      auto dst = matrix.row(v + third);
      std::copy(src.begin(), src.end(), dst.begin());
    }
    const std::string base = testing::TempDir() + "dist_router";
    sharded_path = base + ".sharded.gshs";
    flat_path = base + ".flat.gshs";
    const std::uint64_t per_shard = rows / 3 + 1;
    shard_count =
        static_cast<std::uint32_t>((rows + per_shard - 1) / per_shard);
    EXPECT_TRUE(store::EmbeddingStore::write(matrix, sharded_path,
                                             {.rows_per_shard = per_shard})
                    .is_ok());
    EXPECT_TRUE(store::EmbeddingStore::write(matrix, flat_path, {}).is_ok());
  }

  ~DistFixture() {
    for (std::uint32_t s = 0; s < shard_count; ++s) {
      std::remove(
          store::EmbeddingStore::shard_path(sharded_path, s, shard_count)
              .c_str());
    }
    std::remove(flat_path.c_str());
  }

  /// What one shard child serves: its slice of the sharded store, in
  /// LOCAL ids — exactly `gosh_serve --shard s/N`.
  ServeOptions child_options(unsigned shard) const {
    ServeOptions serve;
    serve.store_path = sharded_path;
    serve.strategy = "exact";
    serve.shard_index = shard;
    serve.shard_count = shard_count;
    serve.k = 12;
    return serve;
  }

  /// The dist-router parent's options; timings tuned so a dead child
  /// fails fast and the breaker can be closed again within a test.
  ServeOptions parent_options() const {
    ServeOptions serve;
    serve.store_path = sharded_path;
    serve.k = 12;
    serve.remote_deadline_ms = 3000;
    serve.remote_retries = 0;
    serve.breaker_failures = 1;
    serve.breaker_cooldown_ms = 50;
    serve.probe_interval_ms = 0;  // recovery is driven by probe_now()
    return serve;
  }
};

/// The three in-process shard children most tests scatter over.
struct ChildSet {
  std::vector<std::unique_ptr<ChildServer>> children;

  explicit ChildSet(const DistFixture& fx) {
    for (std::uint32_t s = 0; s < fx.shard_count; ++s) {
      children.push_back(std::make_unique<ChildServer>(fx.child_options(s)));
    }
  }

  std::vector<std::vector<Endpoint>> groups() const {
    std::vector<std::vector<Endpoint>> groups;
    for (const auto& child : children) {
      groups.push_back({child->endpoint()});
    }
    return groups;
  }

  std::string backends_spec() const {
    std::string spec;
    for (const auto& child : children) {
      if (!spec.empty()) spec += ",";
      spec += child->endpoint().label();
    }
    return spec;
  }
};

void expect_identical(const std::vector<query::Neighbor>& got,
                      const std::vector<query::Neighbor>& expected,
                      const std::string& what) {
  ASSERT_EQ(got.size(), expected.size()) << what;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(got[i].id, expected[i].id) << what << " rank " << i;
    EXPECT_FLOAT_EQ(got[i].score, expected[i].score) << what << " rank " << i;
  }
}

TEST(DistRouter, MatchesTheInProcessRouterBitIdentically) {
  DistFixture fx;
  ChildSet set(fx);
  MetricsRegistry metrics;
  auto dist = DistRouter::open(set.groups(), fx.parent_options(), &metrics);
  ASSERT_TRUE(dist.ok()) << dist.status().to_string();
  EXPECT_EQ(dist.value()->shard_count(), fx.shard_count);
  EXPECT_EQ(dist.value()->rows(), fx.rows);
  EXPECT_EQ(dist.value()->dim(), fx.dim);

  ServeOptions local_options = fx.parent_options();
  local_options.strategy = "router";
  auto router = make_service(local_options);
  ASSERT_TRUE(router.ok()) << router.status().to_string();

  // Tie-heavy vertex probes and shard-edge ids — the Router suite's set.
  for (const vid_t probe : {0u, 10u, 32u, 33u, 43u, 98u}) {
    auto remote = dist.value()->top_k_vertex(probe, 12);
    auto local = router.value()->top_k_vertex(probe, 12);
    ASSERT_TRUE(remote.ok()) << remote.status().to_string();
    ASSERT_TRUE(local.ok());
    expect_identical(remote.value(), local.value(),
                     "vertex " + std::to_string(probe));
  }
  auto vec = router.value()->row_vector(50);
  ASSERT_TRUE(vec.ok());
  auto remote = dist.value()->top_k(vec.value(), 12);
  auto local = router.value()->top_k(vec.value(), 12);
  ASSERT_TRUE(remote.ok() && local.ok());
  expect_identical(remote.value(), local.value(), "raw vector");

  // A healthy scatter is not degraded, and says who answered each shard.
  auto response = dist.value()->serve(QueryRequest::for_vertex(5, 12));
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response.value().degraded);
  ASSERT_EQ(response.value().shards.size(), fx.shard_count);
  for (std::uint32_t s = 0; s < fx.shard_count; ++s) {
    EXPECT_TRUE(response.value().shards[s].ok) << "shard " << s;
    EXPECT_EQ(response.value().shards[s].backend,
              set.children[s]->endpoint().label());
  }
  EXPECT_EQ(metrics.counter("gosh_remote_degraded_responses_total").value(),
            0u);
}

TEST(DistRouter, FiltersSpanningShardBoundariesSpeakGlobalIds) {
  DistFixture fx;
  ChildSet set(fx);
  auto dist = DistRouter::open(set.groups(), fx.parent_options(), nullptr);
  ASSERT_TRUE(dist.ok()) << dist.status().to_string();
  ServeOptions local_options = fx.parent_options();
  local_options.strategy = "router";
  auto router = make_service(local_options);
  ASSERT_TRUE(router.ok());

  // [40, 80) straddles shard 1 and shard 2; the scatter must rebase the
  // range per child and skip shard 0 entirely.
  QueryRequest request = QueryRequest::for_vertex(2, 20);
  request.filter = [](vid_t v) { return v >= 40 && v < 80; };
  request.filter_begin = 40;
  request.filter_end = 80;
  auto got = dist.value()->serve(request);
  auto expected = router.value()->serve(request);
  ASSERT_TRUE(got.ok()) << got.status().to_string();
  ASSERT_TRUE(expected.ok());
  EXPECT_FALSE(got.value().degraded);
  expect_identical(got.value().results.front(),
                   expected.value().results.front(), "boundary filter");
  for (const query::Neighbor& n : got.value().results.front()) {
    EXPECT_GE(n.id, 40u);
    EXPECT_LT(n.id, 80u);
  }
}

TEST(DistRouter, MultiVectorAndMetricOverridesForward) {
  DistFixture fx;
  ChildSet set(fx);
  auto dist = DistRouter::open(set.groups(), fx.parent_options(), nullptr);
  ASSERT_TRUE(dist.ok()) << dist.status().to_string();
  ServeOptions local_options = fx.parent_options();
  local_options.strategy = "router";
  auto router = make_service(local_options);
  ASSERT_TRUE(router.ok());

  auto a = router.value()->row_vector(8);
  auto b = router.value()->row_vector(70);
  ASSERT_TRUE(a.ok() && b.ok());
  std::vector<float> joint = a.value();
  joint.insert(joint.end(), b.value().begin(), b.value().end());

  QueryRequest request;
  request.queries.push_back(Query::multi(joint, 2));
  request.queries.push_back(Query::vertex(70));
  request.k = 9;
  request.aggregate = Aggregate::kMean;
  request.metric = query::Metric::kDot;
  auto got = dist.value()->serve(request);
  auto expected = router.value()->serve(request);
  ASSERT_TRUE(got.ok()) << got.status().to_string();
  ASSERT_TRUE(expected.ok());
  for (std::size_t q = 0; q < expected.value().results.size(); ++q) {
    expect_identical(got.value().results[q], expected.value().results[q],
                     "query " + std::to_string(q));
  }
}

TEST(DistRouter, GroupCountMustMatchTheStoreShardCount) {
  DistFixture fx;
  ChildSet set(fx);
  auto groups = set.groups();
  groups.pop_back();  // 2 groups against a 3-shard store
  auto dist = DistRouter::open(std::move(groups), fx.parent_options(),
                               nullptr);
  ASSERT_FALSE(dist.ok());
  EXPECT_EQ(dist.status().code(), api::StatusCode::kInvalidArgument);
}

TEST(DistRouter, RegistryStrategyWiresThroughBackends) {
  DistFixture fx;
  ChildSet set(fx);
  ServeOptions options = fx.parent_options();
  options.strategy = "dist-router";
  options.backends = set.backends_spec();
  auto service = make_service(options);
  ASSERT_TRUE(service.ok()) << service.status().to_string();
  EXPECT_EQ(service.value()->strategy_name(), "dist-router");
  auto answer = service.value()->top_k_vertex(1, 6);
  ASSERT_TRUE(answer.ok()) << answer.status().to_string();
  EXPECT_EQ(answer.value().size(), 6u);
}

TEST(DistRouter, DegradesThenRecoversBitIdentically) {
  DistFixture fx;
  ChildSet set(fx);
  MetricsRegistry metrics;
  ServeOptions options = fx.parent_options();
  options.remote_deadline_ms = 400;  // a dead child must not stall the merge
  auto dist = DistRouter::open(set.groups(), options, &metrics);
  ASSERT_TRUE(dist.ok()) << dist.status().to_string();
  ServeOptions local_options = fx.parent_options();
  local_options.strategy = "router";
  auto router = make_service(local_options);
  ASSERT_TRUE(router.ok());

  const QueryRequest request = QueryRequest::for_vertex(5, 12);
  auto healthy = dist.value()->serve(request);
  ASSERT_TRUE(healthy.ok());
  ASSERT_FALSE(healthy.value().degraded);

  // Kill shard 1 mid-flight. The scatter keeps answering — a partial
  // merge over shards 0 and 2, annotated per shard.
  set.children[1]->stop();
  auto degraded = dist.value()->serve(request);
  ASSERT_TRUE(degraded.ok()) << degraded.status().to_string();
  EXPECT_TRUE(degraded.value().degraded);
  ASSERT_EQ(degraded.value().shards.size(), 3u);
  EXPECT_TRUE(degraded.value().shards[0].ok);
  EXPECT_FALSE(degraded.value().shards[1].ok);
  EXPECT_FALSE(degraded.value().shards[1].error.empty());
  EXPECT_TRUE(degraded.value().shards[2].ok);
  // Shard 1 owns [34, 68) — none of its rows can appear in the partial.
  ASSERT_FALSE(degraded.value().results.front().empty());
  for (const query::Neighbor& n : degraded.value().results.front()) {
    EXPECT_TRUE(n.id < 34u || n.id >= 68u) << "ghost row " << n.id;
  }
  EXPECT_GE(metrics.counter("gosh_remote_degraded_responses_total").value(),
            1u);
  EXPECT_GE(metrics.counter("gosh_remote_breaker_open_total").value(), 1u);

  // With the breaker open, the next degraded answer sheds the dead shard
  // without dialing it — still annotated the same way.
  auto shed = dist.value()->serve(request);
  ASSERT_TRUE(shed.ok());
  EXPECT_TRUE(shed.value().degraded);
  EXPECT_FALSE(shed.value().shards[1].ok);

  // Restart the child on its pinned port; once the cooldown lapses one
  // half-open probe closes the breaker and the merge is whole — and
  // bit-identical to the in-process Router — again.
  set.children[1]->start();
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  dist.value()->replicas(1).probe_now();
  EXPECT_EQ(dist.value()->replicas(1).breaker_state(0),
            CircuitBreaker::State::kClosed);
  auto recovered = dist.value()->serve(request);
  ASSERT_TRUE(recovered.ok()) << recovered.status().to_string();
  EXPECT_FALSE(recovered.value().degraded);
  auto expected = router.value()->serve(request);
  ASSERT_TRUE(expected.ok());
  expect_identical(recovered.value().results.front(),
                   expected.value().results.front(), "recovered merge");
}

TEST(DistRouter, RequireAllShardsRefusesPartialMerges) {
  DistFixture fx;
  ChildSet set(fx);
  ServeOptions options = fx.parent_options();
  options.remote_deadline_ms = 400;
  options.require_all_shards = true;
  auto dist = DistRouter::open(set.groups(), options, nullptr);
  ASSERT_TRUE(dist.ok()) << dist.status().to_string();

  set.children[2]->stop();
  auto refused = dist.value()->serve(QueryRequest::for_vertex(5, 12));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), api::StatusCode::kUnavailable);
  // The diagnosis names the missing shard.
  EXPECT_NE(refused.status().to_string().find("shard 2"), std::string::npos);
}

TEST(DistRouter, ChaosStalledShardDegradesInsideTheDeadline) {
  DistFixture fx;
  // Shard 0 stalls every request; the deadline, not the stall, bounds the
  // response time.
  std::vector<std::unique_ptr<ChildServer>> children;
  children.push_back(std::make_unique<ChildServer>(
      fx.child_options(0), net::FaultOptions{.stall_rate = 1.0}));
  children.push_back(std::make_unique<ChildServer>(fx.child_options(1)));
  children.push_back(std::make_unique<ChildServer>(fx.child_options(2)));
  std::vector<std::vector<Endpoint>> groups;
  for (const auto& child : children) groups.push_back({child->endpoint()});

  MetricsRegistry metrics;
  ServeOptions options = fx.parent_options();
  options.remote_deadline_ms = 300;
  auto dist = DistRouter::open(std::move(groups), options, &metrics);
  ASSERT_TRUE(dist.ok()) << dist.status().to_string();

  const auto start = std::chrono::steady_clock::now();
  auto response = dist.value()->serve(QueryRequest::for_vertex(70, 12));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_TRUE(response.value().degraded);
  EXPECT_FALSE(response.value().shards[0].ok);
  EXPECT_TRUE(response.value().shards[1].ok);
  EXPECT_TRUE(response.value().shards[2].ok);
  // Bounded: the 300 ms budget plus scheduling slack, nowhere near a
  // stall-forever.
  EXPECT_LT(elapsed, 1500);
}

}  // namespace
}  // namespace gosh::serving
