// ReplicaSet + RemoteService — the fault-tolerance layer under the
// "remote:" strategy: backend-spec parsing, the circuit breaker state
// machine, retry/hedge behavior against live and dead in-process
// backends, and the remote wire answering bit-identically to the local
// strategy it forwards to (suites ReplicaSet* / RemoteService* are in
// the TSan CI filter).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "child_server.hpp"
#include "gosh/serving/remote.hpp"

namespace gosh::serving {
namespace {

// ---- parse_backends -------------------------------------------------------

TEST(ReplicaSet, ParseBackendsInlineForms) {
  auto flat = parse_backends("127.0.0.1:8001");
  ASSERT_TRUE(flat.ok()) << flat.status().to_string();
  ASSERT_EQ(flat.value().size(), 1u);
  ASSERT_EQ(flat.value()[0].size(), 1u);
  EXPECT_EQ(flat.value()[0][0].label(), "127.0.0.1:8001");

  // ',' separates shard groups, '|' separates replicas within one, and
  // whitespace around entries is noise.
  auto groups = parse_backends("h1:1, h2:2|h3:3 ,h4:4");
  ASSERT_TRUE(groups.ok()) << groups.status().to_string();
  ASSERT_EQ(groups.value().size(), 3u);
  EXPECT_EQ(groups.value()[0].size(), 1u);
  ASSERT_EQ(groups.value()[1].size(), 2u);
  EXPECT_EQ(groups.value()[1][0].label(), "h2:2");
  EXPECT_EQ(groups.value()[1][1].label(), "h3:3");
  EXPECT_EQ(groups.value()[2][0].label(), "h4:4");
}

TEST(ReplicaSet, ParseBackendsRejectsMalformedSpecs) {
  EXPECT_FALSE(parse_backends("").ok());
  EXPECT_FALSE(parse_backends("  ").ok());
  EXPECT_FALSE(parse_backends("no-port-here").ok());
  EXPECT_FALSE(parse_backends(":8080").ok());
  EXPECT_FALSE(parse_backends("host:").ok());
  EXPECT_FALSE(parse_backends("host:0").ok());
  EXPECT_FALSE(parse_backends("host:70000").ok());
  EXPECT_FALSE(parse_backends("host:12x").ok());
  EXPECT_FALSE(parse_backends("h1:1,|").ok());  // empty group
}

TEST(ReplicaSet, ParseBackendsFileForm) {
  const std::string path = testing::TempDir() + "backends.txt";
  {
    std::ofstream out(path);
    out << "# shard children\n"
        << "127.0.0.1:9001 | 127.0.0.1:9002   # shard 0 replicas\n"
        << "\n"
        << "127.0.0.1:9003\n";
  }
  auto groups = parse_backends(path);
  std::remove(path.c_str());
  ASSERT_TRUE(groups.ok()) << groups.status().to_string();
  ASSERT_EQ(groups.value().size(), 2u);
  ASSERT_EQ(groups.value()[0].size(), 2u);
  EXPECT_EQ(groups.value()[0][1].label(), "127.0.0.1:9002");
  EXPECT_EQ(groups.value()[1][0].label(), "127.0.0.1:9003");
}

// ---- CircuitBreaker -------------------------------------------------------

TEST(ReplicaSet, BreakerOpensAfterConsecutiveFailures) {
  CircuitBreaker breaker(/*failure_threshold=*/3, /*cooldown_ns=*/1000);
  std::uint64_t now = 10;
  EXPECT_TRUE(breaker.allow(now));
  EXPECT_FALSE(breaker.on_result(false, now));
  EXPECT_FALSE(breaker.on_result(false, now));
  // A success mid-streak resets the count: failures must be CONSECUTIVE.
  EXPECT_FALSE(breaker.on_result(true, now));
  EXPECT_EQ(breaker.consecutive_failures(), 0u);
  EXPECT_FALSE(breaker.on_result(false, now));
  EXPECT_FALSE(breaker.on_result(false, now));
  // The third consecutive failure transitions closed -> open; only the
  // transitioning call reports true (the metric fires once per opening).
  EXPECT_TRUE(breaker.on_result(false, now));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allow(now + 500));  // still cooling down
}

TEST(ReplicaSet, BreakerHalfOpenAdmitsExactlyOneProbe) {
  CircuitBreaker breaker(1, 1000);
  EXPECT_TRUE(breaker.on_result(false, 0));  // opens at t=0
  EXPECT_FALSE(breaker.allow(999));
  EXPECT_TRUE(breaker.allow(1000));  // cooldown over: the probe
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.allow(1001));  // second caller waits for the probe
  // The probe succeeding closes the breaker for everyone.
  EXPECT_FALSE(breaker.on_result(true, 1002));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow(1003));
}

TEST(ReplicaSet, BreakerReopensWhenTheProbeFails) {
  CircuitBreaker breaker(1, 1000);
  EXPECT_TRUE(breaker.on_result(false, 0));
  EXPECT_TRUE(breaker.allow(1500));  // half-open probe admitted
  // The probe failing re-opens — and reports the transition again.
  EXPECT_TRUE(breaker.on_result(false, 1500));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.allow(2000));   // new cooldown from t=1500
  EXPECT_TRUE(breaker.allow(2500));    // ... admits the next probe
}

// ---- ReplicaSet against live/dead backends --------------------------------

constexpr const char* kQueryBody = R"({"queries": [{"vertex": 1}], "k": 3})";

/// One small flat store every remote test serves.
struct FlatFixture {
  std::string path;
  vid_t rows = 40;
  unsigned dim = 5;

  FlatFixture() {
    embedding::EmbeddingMatrix matrix(rows, dim);
    matrix.initialize_random(17);
    path = testing::TempDir() + "remote_flat.gshs";
    EXPECT_TRUE(store::EmbeddingStore::write(matrix, path, {}).is_ok());
  }
  ~FlatFixture() { std::remove(path.c_str()); }

  ServeOptions options() const {
    ServeOptions serve;
    serve.store_path = path;
    serve.strategy = "exact";
    serve.k = 5;
    return serve;
  }
};

/// A loopback port that is bound, then released — nothing answers there.
unsigned short dead_port(const FlatFixture& fx) {
  ChildServer ephemeral(fx.options());
  return ephemeral.port();
}

TEST(ReplicaSet, RetriesOntoASecondBackend) {
  FlatFixture fx;
  ChildServer live(fx.options());
  const unsigned short dead = dead_port(fx);

  ReplicaOptions options;
  options.deadline_ms = 3000;
  options.retries = 2;
  options.hedge_after_ms = 0;
  options.probe_interval_ms = 0;
  MetricsRegistry metrics;
  // Round-robin starts at the dead backend, so the first attempt fails
  // (connection refused) and the retry must land on the live replica.
  ReplicaSet set({Endpoint{"127.0.0.1", dead}, live.endpoint()}, options,
                 &metrics);
  CallStats stats;
  auto response = set.call("/v1/query", kQueryBody, &stats);
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_EQ(response.value().status, 200);
  EXPECT_GE(stats.retries, 1u);
  EXPECT_EQ(stats.backend, live.endpoint().label());
  EXPECT_TRUE(stats.error.empty());
  EXPECT_GE(metrics.counter("gosh_remote_retries_total").value(), 1u);
}

TEST(ReplicaSet, BreakerOpensAndShedsTrafficFast) {
  FlatFixture fx;
  const unsigned short dead = dead_port(fx);

  ReplicaOptions options;
  options.deadline_ms = 500;
  options.retries = 0;
  options.breaker_failures = 2;
  options.breaker_cooldown_ms = 60000;  // stays open for the whole test
  options.probe_interval_ms = 0;
  MetricsRegistry metrics;
  ReplicaSet set({Endpoint{"127.0.0.1", dead}}, options, &metrics);

  EXPECT_FALSE(set.call("/v1/query", kQueryBody).ok());
  EXPECT_FALSE(set.call("/v1/query", kQueryBody).ok());
  EXPECT_EQ(set.breaker_state(0), CircuitBreaker::State::kOpen);
  EXPECT_EQ(metrics.counter("gosh_remote_breaker_open_total").value(), 1u);

  // With the only breaker open, calls shed without dialing at all.
  CallStats stats;
  auto shed = set.call("/v1/query", kQueryBody, &stats);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), api::StatusCode::kUnavailable);
}

TEST(ReplicaSet, HedgesOntoAQuietBackend) {
  FlatFixture fx;
  // Backend 0 stalls every request (deterministic chaos); backend 1 is
  // healthy. The hedge must rescue the call well inside the deadline.
  ChildServer stalled(fx.options(), net::FaultOptions{.stall_rate = 1.0});
  ChildServer fast(fx.options());

  ReplicaOptions options;
  options.deadline_ms = 1500;
  options.retries = 0;
  options.hedge_after_ms = 40;
  options.probe_interval_ms = 0;
  MetricsRegistry metrics;
  ReplicaSet set({stalled.endpoint(), fast.endpoint()}, options, &metrics);
  CallStats stats;
  auto response = set.call("/v1/query", kQueryBody, &stats);
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_EQ(response.value().status, 200);
  EXPECT_TRUE(stats.hedged);
  EXPECT_EQ(stats.backend, fast.endpoint().label());
  EXPECT_EQ(metrics.counter("gosh_remote_hedges_total").value(), 1u);
}

TEST(ReplicaSet, ProbeLoopMarksDeadBackendsUnhealthy) {
  FlatFixture fx;
  ChildServer live(fx.options());
  const unsigned short dead = dead_port(fx);

  ReplicaOptions options;
  options.deadline_ms = 300;
  options.probe_interval_ms = 0;  // drive probes by hand, deterministically
  options.breaker_failures = 1;
  options.breaker_cooldown_ms = 60000;
  ReplicaSet set({Endpoint{"127.0.0.1", dead}, live.endpoint()}, options,
                 nullptr);
  EXPECT_EQ(set.healthy_count(), 2u);  // optimistic until probed
  set.probe_now();
  EXPECT_EQ(set.healthy_count(), 1u);
  EXPECT_EQ(set.breaker_state(0), CircuitBreaker::State::kOpen);
  EXPECT_EQ(set.breaker_state(1), CircuitBreaker::State::kClosed);
}

// ---- RemoteService --------------------------------------------------------

void expect_identical(const std::vector<query::Neighbor>& got,
                      const std::vector<query::Neighbor>& expected,
                      const std::string& what) {
  ASSERT_EQ(got.size(), expected.size()) << what;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(got[i].id, expected[i].id) << what << " rank " << i;
    EXPECT_FLOAT_EQ(got[i].score, expected[i].score) << what << " rank " << i;
  }
}

TEST(RemoteService, AnswersBitIdenticalToTheLocalStrategy) {
  FlatFixture fx;
  ChildServer child(fx.options());

  ServeOptions options = fx.options();
  options.remote_deadline_ms = 3000;
  auto remote = RemoteService::open({child.endpoint()}, options, nullptr);
  ASSERT_TRUE(remote.ok()) << remote.status().to_string();
  // Geometry was learned from the child's /healthz.
  EXPECT_EQ(remote.value()->rows(), fx.rows);
  EXPECT_EQ(remote.value()->dim(), fx.dim);
  EXPECT_EQ(remote.value()->strategy_name(), "remote");

  auto exact = make_service(fx.options());
  ASSERT_TRUE(exact.ok());

  for (const vid_t probe : {0u, 7u, 19u, 39u}) {
    auto over_the_wire = remote.value()->top_k_vertex(probe, 5);
    auto local = exact.value()->top_k_vertex(probe, 5);
    ASSERT_TRUE(over_the_wire.ok()) << over_the_wire.status().to_string();
    ASSERT_TRUE(local.ok());
    // float -> JSON double -> float is exact, so the wire changes nothing.
    expect_identical(over_the_wire.value(), local.value(),
                     "vertex " + std::to_string(probe));
  }

  auto vec = exact.value()->row_vector(11);
  ASSERT_TRUE(vec.ok());
  auto a = remote.value()->top_k(vec.value(), 5);
  auto b = exact.value()->top_k(vec.value(), 5);
  ASSERT_TRUE(a.ok() && b.ok());
  expect_identical(a.value(), b.value(), "raw vector");
}

TEST(RemoteService, ForwardsRangeFiltersAndRejectsOpaqueOnes) {
  FlatFixture fx;
  ChildServer child(fx.options());
  ServeOptions options = fx.options();
  options.remote_deadline_ms = 3000;
  auto remote = RemoteService::open({child.endpoint()}, options, nullptr);
  ASSERT_TRUE(remote.ok()) << remote.status().to_string();
  auto exact = make_service(fx.options());
  ASSERT_TRUE(exact.ok());

  QueryRequest request = QueryRequest::for_vertex(3, 5);
  request.filter = [](vid_t v) { return v >= 10 && v < 30; };
  request.filter_begin = 10;
  request.filter_end = 30;
  auto got = remote.value()->serve(request);
  auto expected = exact.value()->serve(request);
  ASSERT_TRUE(got.ok()) << got.status().to_string();
  ASSERT_TRUE(expected.ok());
  expect_identical(got.value().results.front(),
                   expected.value().results.front(), "range filter");
  EXPECT_FALSE(got.value().degraded);
  ASSERT_EQ(got.value().shards.size(), 1u);
  EXPECT_TRUE(got.value().shards.front().ok);
  EXPECT_EQ(got.value().shards.front().backend, child.endpoint().label());

  // An arbitrary predicate without its range does not serialize.
  QueryRequest opaque = QueryRequest::for_vertex(3, 5);
  opaque.filter = [](vid_t v) { return v % 2 == 0; };
  auto refused = remote.value()->serve(opaque);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), api::StatusCode::kInvalidArgument);
}

TEST(RemoteService, RegistryPrefixFormComposes) {
  FlatFixture fx;
  ChildServer child(fx.options());

  ServeOptions options = fx.options();
  options.strategy = "remote:127.0.0.1:" + std::to_string(child.port());
  options.remote_deadline_ms = 3000;
  auto service = make_service(options);
  ASSERT_TRUE(service.ok()) << service.status().to_string();
  EXPECT_EQ(service.value()->strategy_name(), "remote");
  auto answer = service.value()->top_k_vertex(2, 4);
  ASSERT_TRUE(answer.ok()) << answer.status().to_string();
  EXPECT_EQ(answer.value().size(), 4u);

  // The sugar without endpoints is diagnosed, not crashed on.
  ServeOptions bare = fx.options();
  bare.strategy = "remote:";
  EXPECT_FALSE(make_service(bare).ok());
}

TEST(RemoteService, FailsUnavailableWhenEveryReplicaIsDown) {
  FlatFixture fx;
  const unsigned short dead = dead_port(fx);
  ServeOptions options = fx.options();
  options.remote_deadline_ms = 400;
  options.remote_retries = 0;
  options.probe_interval_ms = 0;
  auto remote =
      RemoteService::open({Endpoint{"127.0.0.1", dead}}, options, nullptr);
  // Geometry comes from the local store when no backend answers /healthz,
  // so open() still succeeds — serving is what degrades.
  ASSERT_TRUE(remote.ok()) << remote.status().to_string();
  EXPECT_EQ(remote.value()->rows(), fx.rows);
  auto answer = remote.value()->top_k_vertex(1, 3);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), api::StatusCode::kUnavailable);
}

}  // namespace
}  // namespace gosh::serving
