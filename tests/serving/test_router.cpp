// Router — sharded-store serving must be indistinguishable from a single
// engine over the unsharded matrix: same ids, same scores, same
// deterministic (score desc, id asc) tie handling, under every metric
// (suite Router* is in the TSan CI filter).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "gosh/serving/registry.hpp"
#include "gosh/serving/router.hpp"

namespace gosh::serving {
namespace {

/// The same matrix written twice: once unsharded, once as 3 shards. Rows
/// are seeded with deliberate duplicates so top-k runs into score ties.
struct ShardedFixture {
  std::string sharded_path;
  std::string flat_path;
  std::uint32_t shard_count;
  vid_t rows;
  unsigned dim;

  explicit ShardedFixture(vid_t rows_in = 99, unsigned dim_in = 7)
      : rows(rows_in), dim(dim_in) {
    embedding::EmbeddingMatrix matrix(rows, dim);
    matrix.initialize_random(31);
    // Duplicate every 10th row into the NEXT shard's range so merged
    // results carry cross-shard ties: (score desc, id asc) must pick the
    // lower id first, whichever shard served it.
    const vid_t third = rows / 3;
    for (vid_t v = 0; v + third < rows; v += 10) {
      const auto src = matrix.row(v);
      auto dst = matrix.row(v + third);
      std::copy(src.begin(), src.end(), dst.begin());
    }

    const std::string base = testing::TempDir() + "router_" +
                             std::to_string(rows) + "_" +
                             std::to_string(dim);
    sharded_path = base + ".sharded.gshs";
    flat_path = base + ".flat.gshs";
    const std::uint64_t per_shard = rows / 3 + 1;
    shard_count =
        static_cast<std::uint32_t>((rows + per_shard - 1) / per_shard);
    EXPECT_TRUE(store::EmbeddingStore::write(matrix, sharded_path,
                                             {.rows_per_shard = per_shard})
                    .is_ok());
    EXPECT_TRUE(store::EmbeddingStore::write(matrix, flat_path, {}).is_ok());
  }

  ServeOptions options(const std::string& path) const {
    ServeOptions serve;
    serve.store_path = path;
    serve.k = 12;
    return serve;
  }

  ~ShardedFixture() {
    for (std::uint32_t s = 0; s < shard_count; ++s) {
      std::remove(
          store::EmbeddingStore::shard_path(sharded_path, s, shard_count)
              .c_str());
    }
    std::remove(flat_path.c_str());
  }
};

void expect_identical(const std::vector<query::Neighbor>& got,
                      const std::vector<query::Neighbor>& expected,
                      const char* what) {
  ASSERT_EQ(got.size(), expected.size()) << what;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(got[i].id, expected[i].id) << what << " rank " << i;
    EXPECT_FLOAT_EQ(got[i].score, expected[i].score) << what << " rank " << i;
  }
}

TEST(Router, OpensOneChildPerShardGroup) {
  ShardedFixture fx;
  auto router = Router::open(fx.options(fx.sharded_path));
  ASSERT_TRUE(router.ok()) << router.status().to_string();
  EXPECT_EQ(router.value()->num_children(), fx.shard_count);
  EXPECT_EQ(router.value()->rows(), fx.rows);
  EXPECT_EQ(router.value()->dim(), fx.dim);
  EXPECT_EQ(router.value()->strategy_name(), "router");
}

TEST(Router, MatchesSingleEngineUnderEveryMetricWithTies) {
  ShardedFixture fx;
  for (const query::Metric metric :
       {query::Metric::kCosine, query::Metric::kDot, query::Metric::kL2}) {
    ServeOptions sharded = fx.options(fx.sharded_path);
    sharded.strategy = "router";
    sharded.metric = metric;
    auto router = make_service(sharded);
    ASSERT_TRUE(router.ok()) << router.status().to_string();

    ServeOptions flat = fx.options(fx.flat_path);
    flat.strategy = "exact";
    flat.metric = metric;
    auto exact = make_service(flat);
    ASSERT_TRUE(exact.ok()) << exact.status().to_string();

    // Vertex probes include duplicated rows (tie-heavy) and shard-edge
    // ids; raw-vector probes hit the same paths without self-exclusion.
    for (const vid_t probe : {0u, 10u, 32u, 33u, 43u, 98u}) {
      auto a = router.value()->top_k_vertex(probe, 12);
      auto b = exact.value()->top_k_vertex(probe, 12);
      ASSERT_TRUE(a.ok() && b.ok()) << query::metric_name(metric);
      expect_identical(a.value(), b.value(),
                       (std::string(query::metric_name(metric)) + " vertex " +
                        std::to_string(probe))
                           .c_str());
    }
    auto vec = router.value()->row_vector(50);
    ASSERT_TRUE(vec.ok());
    auto a = router.value()->top_k(vec.value(), 12);
    auto b = exact.value()->top_k(vec.value(), 12);
    ASSERT_TRUE(a.ok() && b.ok());
    expect_identical(a.value(), b.value(), query::metric_name(metric).data());
  }
}

TEST(Router, FiltersSpeakGlobalIds) {
  ShardedFixture fx;
  ServeOptions options = fx.options(fx.sharded_path);
  options.strategy = "router";
  auto router = make_service(options);
  ASSERT_TRUE(router.ok());

  // The allowed range straddles shard 1 and 2; local ids must have been
  // rebased or the filter would pass the wrong rows.
  QueryRequest request = QueryRequest::for_vertex(2, 20);
  request.filter = [](vid_t v) { return v >= 40 && v < 80; };
  auto response = router.value()->serve(request);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response.value().results.front().size(), 20u);
  for (const query::Neighbor& n : response.value().results.front()) {
    EXPECT_GE(n.id, 40u);
    EXPECT_LT(n.id, 80u);
  }

  ServeOptions flat = fx.options(fx.flat_path);
  flat.strategy = "exact";
  auto exact = make_service(flat);
  ASSERT_TRUE(exact.ok());
  auto expected = exact.value()->serve(request);
  ASSERT_TRUE(expected.ok());
  expect_identical(response.value().results.front(),
                   expected.value().results.front(), "filtered");
}

TEST(Router, MultiVectorAndMetricOverridesScatterCorrectly) {
  ShardedFixture fx;
  ServeOptions options = fx.options(fx.sharded_path);
  options.strategy = "router";
  auto router = make_service(options);
  ASSERT_TRUE(router.ok());
  ServeOptions flat = fx.options(fx.flat_path);
  flat.strategy = "exact";
  auto exact = make_service(flat);
  ASSERT_TRUE(exact.ok());

  auto a = router.value()->row_vector(8);
  auto b = router.value()->row_vector(70);
  ASSERT_TRUE(a.ok() && b.ok());
  std::vector<float> joint = a.value();
  joint.insert(joint.end(), b.value().begin(), b.value().end());

  QueryRequest request;
  request.queries.push_back(Query::multi(joint, 2));
  request.queries.push_back(Query::vertex(70));
  request.k = 9;
  request.aggregate = Aggregate::kMean;
  request.metric = query::Metric::kDot;
  auto got = router.value()->serve(request);
  auto expected = exact.value()->serve(request);
  ASSERT_TRUE(got.ok() && expected.ok());
  for (std::size_t q = 0; q < expected.value().results.size(); ++q) {
    expect_identical(got.value().results[q], expected.value().results[q],
                     ("query " + std::to_string(q)).c_str());
  }
}

TEST(Router, RowVectorResolvesAcrossShards) {
  ShardedFixture fx;
  auto router = Router::open(fx.options(fx.sharded_path));
  ASSERT_TRUE(router.ok());
  auto flat = store::EmbeddingStore::open(fx.flat_path);
  ASSERT_TRUE(flat.ok());
  for (const vid_t v : {0u, 33u, 66u, 98u}) {
    auto row = router.value()->row_vector(v);
    ASSERT_TRUE(row.ok()) << v;
    const auto expected = flat.value().row(v);
    ASSERT_EQ(row.value().size(), expected.size());
    for (std::size_t d = 0; d < expected.size(); ++d) {
      EXPECT_FLOAT_EQ(row.value()[d], expected[d]) << "vertex " << v;
    }
  }
  EXPECT_FALSE(router.value()->row_vector(fx.rows).ok());
}

TEST(Router, RecordsScatterMetrics) {
  ShardedFixture fx;
  MetricsRegistry metrics;
  ServeOptions options = fx.options(fx.sharded_path);
  options.strategy = "router";
  auto router = make_service(options, &metrics);
  ASSERT_TRUE(router.ok());
  ASSERT_TRUE(router.value()->top_k_vertex(1, 5).ok());
  EXPECT_EQ(metrics.counter("gosh_serving_requests_total").value(), 1u);
  EXPECT_EQ(metrics.counter("gosh_serving_router_scatters_total").value(),
            fx.shard_count);
}

TEST(Router, ConcurrentServeIsSafe) {
  ShardedFixture fx;
  ServeOptions options = fx.options(fx.sharded_path);
  options.strategy = "router";
  options.threads = 2;
  auto router = make_service(options);
  ASSERT_TRUE(router.ok());
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&router, t, &fx] {
      for (int i = 0; i < 20; ++i) {
        const vid_t probe = static_cast<vid_t>((t * 20 + i) % fx.rows);
        auto top = router.value()->top_k_vertex(probe, 5);
        ASSERT_TRUE(top.ok());
        EXPECT_EQ(top.value().size(), 5u);
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

}  // namespace
}  // namespace gosh::serving
