// ServeOptions — set()/validate()/from_args()/from_file() parity with
// api::Options: strict parsing, no silent fallbacks, file-then-flags
// precedence.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "gosh/serving/options.hpp"

namespace gosh::serving {
namespace {

std::vector<char*> argv_of(std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("gosh_query"));
  for (std::string& arg : args) argv.push_back(arg.data());
  return argv;
}

TEST(ServeOptions, DefaultsValidateOnceStoreIsSet) {
  ServeOptions options;
  EXPECT_EQ(options.validate().code(), api::StatusCode::kInvalidArgument);
  options.store_path = "emb.store";
  EXPECT_TRUE(options.validate().is_ok());
  EXPECT_EQ(options.strategy, "auto");
  EXPECT_EQ(options.resolved_index_path(), "emb.store.hnsw");
}

TEST(ServeOptions, FromArgsParsesTheFullSurface) {
  std::vector<std::string> args = {
      "--store", "emb.store",  "--strategy",  "router", "--metric", "l2",
      "--k",     "25",         "--aggregate", "mean",   "--filter", "10:90",
      "--ef",    "128",        "--threads",   "3",      "--batch",  "32",
      "--M",     "12",         "--ef-construction",     "80",
      "--seed",  "9",          "--block-rows", "512",   "--no-verify",
      "--metrics"};
  auto argv = argv_of(args);
  auto parsed =
      ServeOptions::from_args(static_cast<int>(argv.size()), argv.data());
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  const ServeOptions& options = parsed.value();
  EXPECT_EQ(options.store_path, "emb.store");
  EXPECT_EQ(options.strategy, "router");
  EXPECT_EQ(options.metric, query::Metric::kL2);
  EXPECT_EQ(options.k, 25u);
  EXPECT_EQ(options.aggregate_mode(), query::Aggregate::kMean);
  EXPECT_EQ(options.filter_begin, 10u);
  EXPECT_EQ(options.filter_end, 90u);
  EXPECT_EQ(options.ef_search, 128u);
  EXPECT_EQ(options.threads, 3u);
  EXPECT_EQ(options.max_batch, 32u);
  EXPECT_EQ(options.hnsw_m, 12u);
  EXPECT_EQ(options.ef_construction, 80u);
  EXPECT_EQ(options.seed, 9u);
  EXPECT_EQ(options.block_rows, 512u);
  EXPECT_FALSE(options.verify_checksums);
  EXPECT_TRUE(options.dump_metrics);

  // The filter predicate speaks the configured [LO, HI) range.
  const query::RowFilter filter = options.row_filter();
  ASSERT_TRUE(static_cast<bool>(filter));
  EXPECT_FALSE(filter(9));
  EXPECT_TRUE(filter(10));
  EXPECT_TRUE(filter(89));
  EXPECT_FALSE(filter(90));
}

TEST(ServeOptions, EngineAndHnswOptionsAreSubsumed) {
  ServeOptions options;
  // Named lvalue: assigning the short literal directly trips GCC 12's
  // -Wrestrict false positive on the inlined std::string replace (PR105651).
  const std::string store_path("s");
  options.store_path = store_path;
  options.metric = query::Metric::kDot;
  options.threads = 2;
  options.block_rows = 128;
  options.ef_search = 99;
  options.hnsw_m = 24;
  options.ef_construction = 333;
  options.seed = 5;
  const query::QueryEngineOptions engine = options.engine_options();
  EXPECT_EQ(engine.metric, query::Metric::kDot);
  EXPECT_EQ(engine.threads, 2u);
  EXPECT_EQ(engine.block_rows, 128u);
  EXPECT_EQ(engine.ef_search, 99u);
  const query::HnswOptions hnsw = options.hnsw_options();
  EXPECT_EQ(hnsw.M, 24u);
  EXPECT_EQ(hnsw.ef_construction, 333u);
  EXPECT_EQ(hnsw.seed, 5u);
  EXPECT_EQ(hnsw.metric, query::Metric::kDot);
}

TEST(ServeOptions, RejectsMalformedValuesWithClearErrors) {
  const auto expect_bad = [](std::vector<std::string> args,
                             const char* needle) {
    auto argv = argv_of(args);
    auto parsed =
        ServeOptions::from_args(static_cast<int>(argv.size()), argv.data());
    ASSERT_FALSE(parsed.ok()) << needle;
    EXPECT_NE(parsed.status().message().find(needle), std::string::npos)
        << parsed.status().to_string();
  };
  expect_bad({"--store", "s", "--k", "abc"}, "k");
  expect_bad({"--store", "s", "--k", "0"}, "k");
  expect_bad({"--store", "s", "--metric", "hamming"}, "cosine");
  expect_bad({"--store", "s", "--aggregate", "median"}, "max");
  expect_bad({"--store", "s", "--filter", "17"}, "LO:HI");
  expect_bad({"--store", "s", "--filter", "30:10"}, "LO < HI");
  expect_bad({"--store", "s", "--block-rows", "0"}, "block_rows");
  expect_bad({"--store", "s", "--ef", "0"}, "ef_search");
  expect_bad({"--store", "s", "--batch", "0"}, "batch");
  expect_bad({"--store", "s", "--bogus", "1"}, "unknown serving option");
  expect_bad({"stray"}, "stray");
}

TEST(ServeOptions, FromFileAppliesAndFlagsOverride) {
  const std::string path = testing::TempDir() + "serve_options_test.conf";
  {
    std::ofstream file(path);
    file << "# serving defaults\n"
         << "store = emb.store\n"
         << "strategy = exact\n"
         << "k = 7\n"
         << "metric = dot\n";
  }
  auto from_file = ServeOptions::from_file(path);
  ASSERT_TRUE(from_file.ok()) << from_file.status().to_string();
  EXPECT_EQ(from_file.value().k, 7u);
  EXPECT_EQ(from_file.value().metric, query::Metric::kDot);

  // --options FILE loads first, command-line flags win.
  std::vector<std::string> args = {"--options", path, "--k", "11"};
  auto argv = argv_of(args);
  auto merged =
      ServeOptions::from_args(static_cast<int>(argv.size()), argv.data());
  ASSERT_TRUE(merged.ok()) << merged.status().to_string();
  EXPECT_EQ(merged.value().k, 11u);
  EXPECT_EQ(merged.value().strategy, "exact");
  std::remove(path.c_str());
}

TEST(ServeOptions, HelpShortCircuits) {
  std::vector<std::string> args = {"--help"};
  auto argv = argv_of(args);
  auto parsed =
      ServeOptions::from_args(static_cast<int>(argv.size()), argv.data());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().show_help);
}

}  // namespace
}  // namespace gosh::serving
