// An in-process "shard child" for the distributed-serving tests: the
// exact stack gosh_serve wires — HttpServer over QueryHandler over
// make_service — plus the ready HealthState a ReplicaSet probe reads.
// stop()/start() cycle the HTTP front on a FIXED port (the listener sets
// SO_REUSEADDR) while the service stays loaded, which is how the recovery
// tests "kill" and "restart" a child without paying a process boundary.
#pragma once

#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "gosh/net/fault_injector.hpp"
#include "gosh/net/query_handler.hpp"
#include "gosh/net/server.hpp"
#include "gosh/serving/registry.hpp"
#include "gosh/serving/remote.hpp"
#include "gosh/store/embedding_store.hpp"

namespace gosh::serving {

class ChildServer {
 public:
  explicit ChildServer(const ServeOptions& serve,
                       const net::FaultOptions& chaos = {})
      : chaos_(chaos) {
    auto service = make_service(serve, &metrics_);
    EXPECT_TRUE(service.ok()) << service.status().to_string();
    if (!service.ok()) return;
    service_ = std::move(service).value();
    handler_ = std::make_unique<net::QueryHandler>(*service_);
    health_.rows.store(service_->rows(), std::memory_order_relaxed);
    health_.dim.store(service_->dim(), std::memory_order_relaxed);
    health_.shards.store(serve.shard_count > 0 ? serve.shard_count : 1,
                         std::memory_order_relaxed);
    health_.ready.store(true, std::memory_order_release);
    net_options_.host = "127.0.0.1";
    net_options_.port = 0;  // ephemeral on the FIRST start, pinned after
    net_options_.threads = 2;
    start();
  }

  ~ChildServer() { stop(); }

  ChildServer(const ChildServer&) = delete;
  ChildServer& operator=(const ChildServer&) = delete;

  /// (Re)starts the HTTP front. After the first start the bound port is
  /// pinned, so a stop()/start() cycle models a child process restarting
  /// on its configured address.
  void start() {
    server_ = std::make_unique<net::HttpServer>(net_options_, &metrics_);
    server_->fault_injector().configure(chaos_);
    net::QueryHandler* handler = handler_.get();
    server_->handle("POST", "/v1/query",
                    [handler](const net::HttpRequest& request) {
                      return handler->handle(request);
                    });
    net::add_builtin_routes(*server_, metrics_, nullptr, &health_);
    const api::Status started = server_->start();
    ASSERT_TRUE(started.is_ok()) << started.to_string();
    net_options_.port = server_->port();
  }

  /// Stops answering (listener closed, workers joined) — the "killed
  /// child" half of the recovery tests. Idempotent.
  void stop() {
    if (server_ != nullptr) {
      server_->shutdown();
      server_.reset();
    }
  }

  unsigned short port() const { return net_options_.port; }
  Endpoint endpoint() const { return Endpoint{"127.0.0.1", port()}; }
  MetricsRegistry& metrics() { return metrics_; }
  net::HealthState& health() { return health_; }
  net::HttpServer& server() { return *server_; }

 private:
  net::FaultOptions chaos_;
  MetricsRegistry metrics_;
  net::HealthState health_;
  std::unique_ptr<QueryService> service_;
  std::unique_ptr<net::QueryHandler> handler_;
  net::NetOptions net_options_;
  std::unique_ptr<net::HttpServer> server_;
};

}  // namespace gosh::serving
