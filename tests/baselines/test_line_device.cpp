// LINE-on-device (GraphVite stand-in): learning and the single-GPU
// memory limitation.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gosh/baselines/line_device.hpp"
#include "gosh/graph/builder.hpp"
#include "gosh/graph/generators.hpp"

namespace gosh::baselines {
namespace {

TEST(LineDevice, ProducesFiniteEmbedding) {
  simt::DeviceConfig device_config;
  device_config.memory_bytes = 32u << 20;
  device_config.workers = 2;
  simt::Device device(device_config);
  LineConfig config;
  config.dim = 16;
  config.epochs = 10;
  const auto m = line_device_embed(graph::rmat(9, 2000, 81), device, config);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_TRUE(std::isfinite(m.data()[i]));
  }
}

TEST(LineDevice, LearnsCommunities) {
  const vid_t clique = 8;
  std::vector<graph::Edge> edges;
  for (vid_t u = 0; u < clique; ++u) {
    for (vid_t v = u + 1; v < clique; ++v) {
      edges.emplace_back(u, v);
      edges.emplace_back(clique + u, clique + v);
    }
  }
  edges.emplace_back(0, clique);
  const auto g = graph::build_csr(2 * clique, std::move(edges));

  simt::DeviceConfig device_config;
  device_config.memory_bytes = 16u << 20;
  device_config.workers = 2;
  simt::Device device(device_config);
  LineConfig config;
  config.dim = 16;
  config.epochs = 600;
  config.learning_rate = 0.05f;
  const auto m = line_device_embed(g, device, config);

  float intra = 0.0f, inter = 0.0f;
  int intra_n = 0, inter_n = 0;
  for (vid_t u = 0; u < 2 * clique; ++u) {
    for (vid_t v = u + 1; v < 2 * clique; ++v) {
      const float d =
          embedding::dot(m.row(u).data(), m.row(v).data(), m.dim());
      if ((u < clique) == (v < clique)) {
        intra += d;
        intra_n++;
      } else {
        inter += d;
        inter_n++;
      }
    }
  }
  EXPECT_GT(intra / intra_n - inter / inter_n, 0.05f);
}

TEST(LineDevice, OutOfMemoryLikeGraphvite) {
  // The Table 7 behaviour: when matrix+graph exceed device memory the
  // tool fails instead of partitioning.
  simt::DeviceConfig device_config;
  device_config.memory_bytes = 64u << 10;  // 64 KiB device
  device_config.workers = 1;
  simt::Device device(device_config);
  const auto g = graph::rmat(11, 10000, 82);
  LineConfig config;
  config.dim = 64;
  EXPECT_THROW(line_device_embed(g, device, config),
               simt::DeviceOutOfMemory);
}

}  // namespace
}  // namespace gosh::baselines
