// LINE-on-device (GraphVite stand-in) through the gosh::api facade
// ("line-device" backend): learning and the single-GPU memory limitation
// surfacing as an out_of_memory Status.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gosh/api/api.hpp"

namespace gosh {
namespace {

api::Options line_options(std::size_t device_bytes, unsigned dim,
                          unsigned epochs) {
  api::Options options;
  options.backend = "line-device";
  options.train().dim = dim;
  options.gosh.total_epochs = epochs;
  options.device.memory_bytes = device_bytes;
  options.device.workers = 2;
  return options;
}

TEST(LineDevice, ProducesFiniteEmbedding) {
  auto result =
      api::embed(graph::rmat(9, 2000, 81), line_options(32u << 20, 16, 10));
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  const embedding::EmbeddingMatrix& m = result.value().embedding;
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_TRUE(std::isfinite(m.data()[i]));
  }
}

TEST(LineDevice, LearnsCommunities) {
  const vid_t clique = 8;
  std::vector<graph::Edge> edges;
  for (vid_t u = 0; u < clique; ++u) {
    for (vid_t v = u + 1; v < clique; ++v) {
      edges.emplace_back(u, v);
      edges.emplace_back(clique + u, clique + v);
    }
  }
  edges.emplace_back(0, clique);
  const auto g = graph::build_csr(2 * clique, std::move(edges));

  api::Options options = line_options(16u << 20, 16, 600);
  options.train().learning_rate = 0.05f;
  auto result = api::embed(g, options);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  const embedding::EmbeddingMatrix& m = result.value().embedding;

  float intra = 0.0f, inter = 0.0f;
  int intra_n = 0, inter_n = 0;
  for (vid_t u = 0; u < 2 * clique; ++u) {
    for (vid_t v = u + 1; v < 2 * clique; ++v) {
      const float d =
          embedding::dot(m.row(u).data(), m.row(v).data(), m.dim());
      if ((u < clique) == (v < clique)) {
        intra += d;
        intra_n++;
      } else {
        inter += d;
        inter_n++;
      }
    }
  }
  EXPECT_GT(intra / intra_n - inter / inter_n, 0.05f);
}

TEST(LineDevice, OutOfMemoryLikeGraphvite) {
  // The Table 7 behaviour: when matrix+graph exceed device memory the
  // backend fails with an out_of_memory Status instead of partitioning.
  const auto g = graph::rmat(11, 10000, 82);
  api::Options options = line_options(64u << 10, 64, 10);  // 64 KiB device
  options.device.workers = 1;
  auto result = api::embed(g, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), api::StatusCode::kOutOfMemory);
}

}  // namespace
}  // namespace gosh
