// VERSE-CPU baseline: runs, learns, both similarity modes.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gosh/baselines/verse_cpu.hpp"
#include "gosh/embedding/update.hpp"
#include "gosh/graph/builder.hpp"
#include "gosh/graph/generators.hpp"

namespace gosh::baselines {
namespace {

graph::Graph two_cliques(vid_t clique = 8) {
  std::vector<graph::Edge> edges;
  for (vid_t u = 0; u < clique; ++u) {
    for (vid_t v = u + 1; v < clique; ++v) {
      edges.emplace_back(u, v);
      edges.emplace_back(clique + u, clique + v);
    }
  }
  edges.emplace_back(0, clique);
  return graph::build_csr(2 * clique, std::move(edges));
}

float separation(const embedding::EmbeddingMatrix& m, vid_t clique) {
  float intra = 0.0f, inter = 0.0f;
  int intra_n = 0, inter_n = 0;
  for (vid_t u = 0; u < 2 * clique; ++u) {
    for (vid_t v = u + 1; v < 2 * clique; ++v) {
      const float d =
          embedding::dot(m.row(u).data(), m.row(v).data(), m.dim());
      if ((u < clique) == (v < clique)) {
        intra += d;
        intra_n++;
      } else {
        inter += d;
        inter_n++;
      }
    }
  }
  return intra / intra_n - inter / inter_n;
}

TEST(VerseCpu, ProducesFiniteEmbedding) {
  VerseConfig config;
  config.dim = 16;
  config.epochs = 20;
  const auto m = verse_cpu_embed(graph::rmat(9, 2000, 61), config);
  EXPECT_EQ(m.dim(), 16u);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_TRUE(std::isfinite(m.data()[i]));
  }
}

TEST(VerseCpu, AdjacencyModeLearnsCommunities) {
  VerseConfig config;
  config.dim = 16;
  config.epochs = 400;
  config.learning_rate = 0.05f;
  config.similarity = VerseConfig::Similarity::kAdjacency;
  const auto m = verse_cpu_embed(two_cliques(), config);
  EXPECT_GT(separation(m, 8), 0.1f);
}

TEST(VerseCpu, PprModeLearnsCommunities) {
  VerseConfig config;
  config.dim = 16;
  config.epochs = 400;
  config.learning_rate = 0.05f;
  config.similarity = VerseConfig::Similarity::kPpr;
  const auto m = verse_cpu_embed(two_cliques(), config);
  EXPECT_GT(separation(m, 8), 0.05f);
}

TEST(VerseCpu, SingleThreadDeterministic) {
  VerseConfig config;
  config.dim = 8;
  config.epochs = 10;
  config.threads = 1;
  const auto g = graph::rmat(8, 1000, 62);
  const auto a = verse_cpu_embed(g, config);
  const auto b = verse_cpu_embed(g, config);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.data()[i], b.data()[i]);
  }
}

TEST(VerseCpu, HandlesIsolatedVertices) {
  graph::Graph g = graph::build_csr(20, {{0, 1}, {2, 3}});
  VerseConfig config;
  config.dim = 8;
  config.epochs = 10;
  const auto m = verse_cpu_embed(g, config);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_TRUE(std::isfinite(m.data()[i]));
  }
}

}  // namespace
}  // namespace gosh::baselines
