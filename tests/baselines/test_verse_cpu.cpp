// VERSE-CPU baseline through the gosh::api facade ("verse-cpu" backend):
// runs, learns, both similarity modes, deterministic single-threaded.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gosh/api/api.hpp"

namespace gosh {
namespace {

graph::Graph two_cliques(vid_t clique = 8) {
  std::vector<graph::Edge> edges;
  for (vid_t u = 0; u < clique; ++u) {
    for (vid_t v = u + 1; v < clique; ++v) {
      edges.emplace_back(u, v);
      edges.emplace_back(clique + u, clique + v);
    }
  }
  edges.emplace_back(0, clique);
  return graph::build_csr(2 * clique, std::move(edges));
}

float separation(const embedding::EmbeddingMatrix& m, vid_t clique) {
  float intra = 0.0f, inter = 0.0f;
  int intra_n = 0, inter_n = 0;
  for (vid_t u = 0; u < 2 * clique; ++u) {
    for (vid_t v = u + 1; v < 2 * clique; ++v) {
      const float d =
          embedding::dot(m.row(u).data(), m.row(v).data(), m.dim());
      if ((u < clique) == (v < clique)) {
        intra += d;
        intra_n++;
      } else {
        inter += d;
        inter_n++;
      }
    }
  }
  return intra / intra_n - inter / inter_n;
}

api::Options verse_options(unsigned dim, unsigned epochs) {
  api::Options options;
  options.backend = "verse-cpu";
  options.train().dim = dim;
  options.gosh.total_epochs = epochs;
  return options;
}

embedding::EmbeddingMatrix must_embed(const graph::Graph& g,
                                      const api::Options& options) {
  auto result = api::embed(g, options);
  EXPECT_TRUE(result.ok()) << result.status().to_string();
  return std::move(result).value().embedding;
}

TEST(VerseCpu, ProducesFiniteEmbedding) {
  const auto m = must_embed(graph::rmat(9, 2000, 61), verse_options(16, 20));
  EXPECT_EQ(m.dim(), 16u);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_TRUE(std::isfinite(m.data()[i]));
  }
}

TEST(VerseCpu, AdjacencyModeLearnsCommunities) {
  api::Options options = verse_options(16, 400);
  options.verse_similarity = "adjacency";
  options.verse_learning_rate = 0.05f;
  const auto m = must_embed(two_cliques(), options);
  EXPECT_GT(separation(m, 8), 0.1f);
}

TEST(VerseCpu, PprModeLearnsCommunities) {
  api::Options options = verse_options(16, 400);
  options.verse_similarity = "ppr";  // the backend's paper default
  options.verse_learning_rate = 0.05f;
  const auto m = must_embed(two_cliques(), options);
  EXPECT_GT(separation(m, 8), 0.05f);
}

TEST(VerseCpu, SingleThreadDeterministic) {
  api::Options options = verse_options(8, 10);
  options.device.workers = 1;  // the backend's HOGWILD team size
  const auto g = graph::rmat(8, 1000, 62);
  const auto a = must_embed(g, options);
  const auto b = must_embed(g, options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.data()[i], b.data()[i]);
  }
}

TEST(VerseCpu, RejectsUnknownSimilarity) {
  api::Options options = verse_options(8, 10);
  EXPECT_FALSE(options.set("verse-similarity", "cosine").is_ok());
  options.verse_similarity = "cosine";
  auto result = api::embed(two_cliques(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), api::StatusCode::kInvalidArgument);
}

TEST(VerseCpu, HandlesIsolatedVertices) {
  graph::Graph g = graph::build_csr(20, {{0, 1}, {2, 3}});
  const auto m = must_embed(g, verse_options(8, 10));
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_TRUE(std::isfinite(m.data()[i]));
  }
}

}  // namespace
}  // namespace gosh
