// MILE baseline: hierarchy shape and end-to-end embedding.
#include <gtest/gtest.h>

#include <cmath>

#include "gosh/baselines/mile.hpp"
#include "gosh/graph/generators.hpp"

namespace gosh::baselines {
namespace {

TEST(Mile, EndToEndProducesOriginalSizeEmbedding) {
  const auto g = graph::rmat(10, 4000, 71);
  MileConfig config;
  config.coarsening_levels = 4;
  config.base.dim = 16;
  config.base.epochs = 50;
  const auto result = mile_embed(g, config);
  EXPECT_EQ(result.embedding.rows(), g.num_vertices());
  EXPECT_EQ(result.embedding.dim(), 16u);
  for (std::size_t i = 0; i < result.embedding.size(); ++i) {
    EXPECT_TRUE(std::isfinite(result.embedding.data()[i]));
  }
}

TEST(Mile, HierarchyTimingsReported) {
  const auto g = graph::rmat(9, 2000, 72);
  MileConfig config;
  config.coarsening_levels = 3;
  config.base.dim = 8;
  config.base.epochs = 10;
  const auto result = mile_embed(g, config);
  EXPECT_EQ(result.hierarchy.level_seconds.size(),
            result.hierarchy.maps.size());
  EXPECT_GE(result.coarsening_seconds, 0.0);
  EXPECT_GT(result.base_embed_seconds, 0.0);
  EXPECT_GT(result.refinement_seconds, 0.0);
}

TEST(Mile, RefinementPreservesScale) {
  // Propagation must not blow up or zero out the embedding.
  const auto g = graph::rmat(9, 2000, 73);
  MileConfig config;
  config.coarsening_levels = 3;
  config.base.dim = 8;
  config.base.epochs = 30;
  const auto result = mile_embed(g, config);
  double norm = 0.0;
  for (std::size_t i = 0; i < result.embedding.size(); ++i) {
    norm += std::abs(result.embedding.data()[i]);
  }
  EXPECT_GT(norm, 1e-6);
  EXPECT_TRUE(std::isfinite(norm));
}

}  // namespace
}  // namespace gosh::baselines
