// MILE baseline through the gosh::api facade ("mile" backend): hierarchy
// depth knob and end-to-end embedding. (Per-level matching detail is
// covered by tests/coarsening/test_mile_matching.cpp.)
#include <gtest/gtest.h>

#include <cmath>

#include "gosh/api/api.hpp"

namespace gosh {
namespace {

api::Options mile_options(unsigned levels, unsigned dim, unsigned epochs) {
  api::Options options;
  options.backend = "mile";
  options.mile_levels = levels;
  options.train().dim = dim;
  options.gosh.total_epochs = epochs;
  return options;
}

api::EmbedResult must_embed(const graph::Graph& g,
                            const api::Options& options) {
  auto result = api::embed(g, options);
  EXPECT_TRUE(result.ok()) << result.status().to_string();
  return std::move(result).value();
}

TEST(Mile, EndToEndProducesOriginalSizeEmbedding) {
  const auto g = graph::rmat(10, 4000, 71);
  const auto result = must_embed(g, mile_options(4, 16, 50));
  EXPECT_EQ(result.backend, "mile");
  EXPECT_EQ(result.embedding.rows(), g.num_vertices());
  EXPECT_EQ(result.embedding.dim(), 16u);
  for (std::size_t i = 0; i < result.embedding.size(); ++i) {
    EXPECT_TRUE(std::isfinite(result.embedding.data()[i]));
  }
}

TEST(Mile, TimingsReported) {
  const auto g = graph::rmat(9, 2000, 72);
  const auto result = must_embed(g, mile_options(3, 8, 10));
  // coarsening_seconds is the matching hierarchy; training_seconds folds
  // base embedding + refinement, and everything is inside total.
  EXPECT_GE(result.coarsening_seconds, 0.0);
  EXPECT_GT(result.training_seconds, 0.0);
  EXPECT_GE(result.total_seconds,
            result.coarsening_seconds + result.training_seconds - 1e-6);
  ASSERT_EQ(result.levels.size(), 1u);
  EXPECT_EQ(result.levels[0].vertices, g.num_vertices());
}

TEST(Mile, RefinementPreservesScale) {
  // Propagation must not blow up or zero out the embedding.
  const auto g = graph::rmat(9, 2000, 73);
  const auto result = must_embed(g, mile_options(3, 8, 30));
  double norm = 0.0;
  for (std::size_t i = 0; i < result.embedding.size(); ++i) {
    norm += std::abs(result.embedding.data()[i]);
  }
  EXPECT_GT(norm, 1e-6);
  EXPECT_TRUE(std::isfinite(norm));
}

}  // namespace
}  // namespace gosh
