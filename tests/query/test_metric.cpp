// gosh::query metrics — hand-computed similarity values, name parsing,
// and the per-store norm cache.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "gosh/query/metric.hpp"

namespace gosh::query {
namespace {

TEST(QueryMetric, CosineMatchesHandComputation) {
  // cos((1,0), (1,1)) = 1 / sqrt(2).
  const float a[2] = {1.0f, 0.0f};
  const float b[2] = {1.0f, 1.0f};
  const float inv_a = inverse_norm(a, 2);
  const float inv_b = inverse_norm(b, 2);
  EXPECT_NEAR(similarity(Metric::kCosine, a, b, 2, inv_a, inv_b),
              1.0f / std::sqrt(2.0f), 1e-6f);
  // Orthogonal vectors score 0, antiparallel score -1.
  const float c[2] = {0.0f, 3.0f};
  EXPECT_NEAR(similarity(Metric::kCosine, a, c, 2, inv_a,
                         inverse_norm(c, 2)),
              0.0f, 1e-6f);
  const float d[2] = {-2.0f, 0.0f};
  EXPECT_NEAR(similarity(Metric::kCosine, a, d, 2, inv_a,
                         inverse_norm(d, 2)),
              -1.0f, 1e-6f);
}

TEST(QueryMetric, ZeroVectorCosineIsZeroNotNan) {
  const float zero[3] = {0.0f, 0.0f, 0.0f};
  const float v[3] = {1.0f, 2.0f, 3.0f};
  EXPECT_EQ(inverse_norm(zero, 3), 0.0f);
  EXPECT_EQ(similarity(Metric::kCosine, zero, v, 3, inverse_norm(zero, 3),
                       inverse_norm(v, 3)),
            0.0f);
}

TEST(QueryMetric, DotMatchesHandComputation) {
  const float a[3] = {1.0f, 2.0f, 3.0f};
  const float b[3] = {4.0f, -5.0f, 6.0f};
  EXPECT_NEAR(similarity(Metric::kDot, a, b, 3, 0.0f, 0.0f),
              4.0f - 10.0f + 18.0f, 1e-6f);
}

TEST(QueryMetric, L2IsNegatedSquaredDistance) {
  const float a[2] = {1.0f, 2.0f};
  const float b[2] = {4.0f, 6.0f};  // distance 5, squared 25
  EXPECT_NEAR(similarity(Metric::kL2, a, b, 2, 0.0f, 0.0f), -25.0f, 1e-6f);
  // Identical vectors are the best possible match under L2.
  EXPECT_EQ(similarity(Metric::kL2, a, a, 2, 0.0f, 0.0f), 0.0f);
}

TEST(QueryMetric, NeighborOrderingBreaksTiesById) {
  EXPECT_TRUE(better({3, 1.0f}, {2, 0.5f}));
  EXPECT_FALSE(better({3, 0.5f}, {2, 1.0f}));
  EXPECT_TRUE(better({2, 1.0f}, {3, 1.0f}));  // equal score: lower id wins
}

TEST(QueryMetric, ParseRoundTripsAndRejectsUnknown) {
  for (const Metric metric : {Metric::kCosine, Metric::kDot, Metric::kL2}) {
    auto parsed = parse_metric(metric_name(metric));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), metric);
  }
  EXPECT_EQ(parse_metric("manhattan").status().code(),
            api::StatusCode::kInvalidArgument);
}

TEST(QueryMetric, RowInverseNormsCoverTheStore) {
  embedding::EmbeddingMatrix matrix(5, 3);
  for (vid_t v = 0; v < 5; ++v) {
    for (unsigned i = 0; i < 3; ++i) matrix.row(v)[i] = (v == 0) ? 0.0f : v;
  }
  const std::string path = testing::TempDir() + "metric_norms.gshs";
  ASSERT_TRUE(store::EmbeddingStore::write(matrix, path).is_ok());
  auto opened = store::EmbeddingStore::open(path);
  ASSERT_TRUE(opened.ok());

  const auto inv = row_inverse_norms(opened.value(), Metric::kCosine);
  ASSERT_EQ(inv.size(), 5u);
  EXPECT_EQ(inv[0], 0.0f);  // zero row degrades, no NaN
  for (vid_t v = 1; v < 5; ++v) {
    EXPECT_NEAR(inv[v], 1.0f / (v * std::sqrt(3.0f)), 1e-6f);
  }
  // Non-cosine metrics need no norms at all.
  EXPECT_TRUE(row_inverse_norms(opened.value(), Metric::kDot).empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gosh::query
