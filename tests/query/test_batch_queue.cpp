// QueryEngine argument checking and the BatchQueue serving loop — the
// multi-threaded smoke test here runs under the ThreadSanitizer CI job
// (suite names BatchQueue* / QueryEngine* are in the TSan filter).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "gosh/query/batch_queue.hpp"

namespace gosh::query {
namespace {

struct Fixture {
  store::EmbeddingStore store;
  std::string path;

  explicit Fixture(vid_t rows = 128, unsigned dim = 8) {
    embedding::EmbeddingMatrix matrix(rows, dim);
    matrix.initialize_random(23);
    path = testing::TempDir() + "batch_queue_" +
           std::to_string(::getpid()) + "_" + std::to_string(rows) + ".gshs";
    EXPECT_TRUE(store::EmbeddingStore::write(matrix, path).is_ok());
    auto opened = store::EmbeddingStore::open(path);
    EXPECT_TRUE(opened.ok()) << opened.status().to_string();
    store = std::move(opened).value();
  }
  ~Fixture() { std::remove(path.c_str()); }
};

TEST(QueryEngine, RejectsBadArguments) {
  Fixture fx;
  QueryEngine engine(std::move(fx.store), {});
  const std::vector<float> query(engine.dim(), 0.5f);

  EXPECT_EQ(engine.top_k(query, 0).status().code(),
            api::StatusCode::kInvalidArgument);
  const std::vector<float> short_query(engine.dim() - 1, 0.5f);
  EXPECT_EQ(engine.top_k(short_query, 5).status().code(),
            api::StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.top_k_vertex(engine.rows(), 5).status().code(),
            api::StatusCode::kInvalidArgument);
  // HNSW without an index is a diagnosed error, not a crash.
  EXPECT_EQ(engine.top_k(query, 5, Strategy::kHnsw).status().code(),
            api::StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.load_index("/nonexistent/index.hnsw").code(),
            api::StatusCode::kIoError);
}

TEST(QueryEngine, VertexQueriesExcludeTheProbeItself) {
  Fixture fx;
  QueryEngine engine(std::move(fx.store), {});
  auto top = engine.top_k_vertex(40, 10);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top.value().size(), 10u);
  for (const Neighbor& n : top.value()) EXPECT_NE(n.id, 40u);
}

TEST(QueryEngine, RejectsIndexBuiltForAnotherMetricOrStore) {
  Fixture fx;
  QueryEngineOptions l2;
  l2.metric = Metric::kL2;
  QueryEngine engine(std::move(fx.store), l2);
  const HnswIndex cosine_index = HnswIndex::build(
      engine.store(), {.M = 4, .metric = Metric::kCosine});
  EXPECT_EQ(engine.attach_index(cosine_index).code(),
            api::StatusCode::kInvalidArgument);

  // Shape mismatch: an index over a smaller store.
  embedding::EmbeddingMatrix tiny(10, 8);
  tiny.initialize_random(1);
  const std::string tiny_path = testing::TempDir() + "batch_queue_tiny.gshs";
  ASSERT_TRUE(store::EmbeddingStore::write(tiny, tiny_path).is_ok());
  auto tiny_store = store::EmbeddingStore::open(tiny_path);
  ASSERT_TRUE(tiny_store.ok());
  const HnswIndex tiny_index =
      HnswIndex::build(tiny_store.value(), {.M = 4, .metric = Metric::kL2});
  EXPECT_EQ(engine.attach_index(tiny_index).code(),
            api::StatusCode::kInvalidArgument);
  std::remove(tiny_path.c_str());
}

TEST(BatchQueue, ServesOneQueryLikeTheEngine) {
  Fixture fx;
  QueryEngine engine(std::move(fx.store), {});
  const auto row = engine.store().row(7);
  auto direct = engine.top_k(row, 5);
  ASSERT_TRUE(direct.ok());

  QueryCounters counters;
  BatchQueue queue(engine, {.max_batch = 8, .k = 5}, &counters);
  auto future = queue.submit(std::vector<float>(row.begin(), row.end()));
  const auto served = future.get();
  ASSERT_EQ(served.size(), direct.value().size());
  for (std::size_t i = 0; i < served.size(); ++i) {
    EXPECT_EQ(served[i].id, direct.value()[i].id);
  }
  queue.stop();
  EXPECT_EQ(counters.queries(), 1u);
  EXPECT_EQ(counters.batches(), 1u);
  EXPECT_GE(counters.max_latency_seconds(), 0.0);
}

TEST(BatchQueue, ConcurrentSubmittersAllGetCorrectAnswers) {
  Fixture fx(200, 6);
  QueryEngine engine(std::move(fx.store), {});
  QueryCounters counters;
  BatchQueue queue(engine, {.max_batch = 16, .k = 3}, &counters);

  constexpr unsigned kThreads = 4;
  constexpr unsigned kPerThread = 32;
  std::vector<std::thread> submitters;
  std::vector<int> mismatches(kThreads, 0);
  for (unsigned t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (unsigned i = 0; i < kPerThread; ++i) {
        const vid_t probe = (t * kPerThread + i) % engine.rows();
        const auto row = engine.store().row(probe);
        auto served =
            queue.submit(std::vector<float>(row.begin(), row.end())).get();
        // A stored row's own top hit is itself under cosine.
        if (served.empty() || served[0].id != probe) ++mismatches[t];
      }
    });
  }
  for (std::thread& s : submitters) s.join();
  queue.stop();

  for (unsigned t = 0; t < kThreads; ++t) EXPECT_EQ(mismatches[t], 0);
  EXPECT_EQ(counters.queries(), kThreads * kPerThread);
  EXPECT_GE(counters.batches(), 1u);
  EXPECT_LE(counters.batches(), counters.queries());
  EXPECT_GT(counters.mean_latency_seconds(), 0.0);
  EXPECT_GE(counters.max_latency_seconds(),
            counters.mean_latency_seconds() - 1e-12);
}

TEST(BatchQueue, SubmitAfterStopAndWrongDimAreBrokenFutures) {
  Fixture fx;
  QueryEngine engine(std::move(fx.store), {});
  BatchQueue queue(engine, {.max_batch = 4, .k = 2});

  auto bad_dim = queue.submit(std::vector<float>(3, 1.0f));
  EXPECT_THROW(bad_dim.get(), std::runtime_error);

  queue.stop();
  auto after_stop =
      queue.submit(std::vector<float>(engine.dim(), 1.0f));
  EXPECT_THROW(after_stop.get(), std::runtime_error);
}

TEST(BatchQueue, DestructorDrainsPendingRequests) {
  Fixture fx;
  QueryEngine engine(std::move(fx.store), {});
  std::vector<std::future<std::vector<Neighbor>>> futures;
  {
    BatchQueue queue(engine, {.max_batch = 2, .k = 4});
    for (int i = 0; i < 20; ++i) {
      const auto row = engine.store().row(static_cast<vid_t>(i));
      futures.push_back(
          queue.submit(std::vector<float>(row.begin(), row.end())));
    }
    // Queue destructs here with requests possibly still parked.
  }
  for (auto& f : futures) EXPECT_EQ(f.get().size(), 4u);
}

}  // namespace
}  // namespace gosh::query
