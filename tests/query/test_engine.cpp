// QueryEngine construction validation (degenerate QueryEngineOptions must
// be kInvalidArgument, not a silent empty scan) and the strategy parser's
// name-enumerating errors.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "gosh/query/engine.hpp"

namespace gosh::query {
namespace {

struct Fixture {
  store::EmbeddingStore store;
  std::string path;

  explicit Fixture(vid_t rows = 32, unsigned dim = 8) {
    embedding::EmbeddingMatrix matrix(rows, dim);
    matrix.initialize_random(7);
    path = testing::TempDir() + "engine_options_" +
           std::to_string(::getpid()) + "_" + std::to_string(rows) + ".gshs";
    EXPECT_TRUE(store::EmbeddingStore::write(matrix, path).is_ok());
    auto opened = store::EmbeddingStore::open(path);
    EXPECT_TRUE(opened.ok()) << opened.status().to_string();
    store = std::move(opened).value();
  }
  ~Fixture() { std::remove(path.c_str()); }
};

TEST(QueryEngineValidation, DefaultOptionsAreValid) {
  EXPECT_TRUE(QueryEngineOptions{}.validate().is_ok());
  Fixture fx;
  auto engine = QueryEngine::create(std::move(fx.store));
  ASSERT_TRUE(engine.ok()) << engine.status().to_string();
  EXPECT_EQ(engine.value().rows(), 32u);
}

TEST(QueryEngineValidation, ZeroBlockRowsIsInvalidArgument) {
  Fixture fx;
  QueryEngineOptions options;
  options.block_rows = 0;
  EXPECT_EQ(options.validate().code(), api::StatusCode::kInvalidArgument);
  auto engine = QueryEngine::create(std::move(fx.store), options);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), api::StatusCode::kInvalidArgument);
  EXPECT_NE(engine.status().message().find("block_rows"), std::string::npos);
}

TEST(QueryEngineValidation, ZeroEfSearchIsInvalidArgument) {
  Fixture fx;
  QueryEngineOptions options;
  options.ef_search = 0;
  auto engine = QueryEngine::create(std::move(fx.store), options);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), api::StatusCode::kInvalidArgument);
  EXPECT_NE(engine.status().message().find("ef_search"), std::string::npos);
}

TEST(QueryEngineValidation, AbsurdThreadCountIsInvalidArgument) {
  QueryEngineOptions options;
  options.threads = 100000;
  EXPECT_EQ(options.validate().code(), api::StatusCode::kInvalidArgument);
}

TEST(QueryEngineValidation, CreatedEngineAnswersQueries) {
  Fixture fx;
  QueryEngineOptions options;
  options.metric = Metric::kL2;
  auto engine = QueryEngine::create(std::move(fx.store), options);
  ASSERT_TRUE(engine.ok());
  auto top = engine.value().top_k_vertex(3, 5);
  ASSERT_TRUE(top.ok()) << top.status().to_string();
  EXPECT_EQ(top.value().size(), 5u);
}

TEST(QueryEngineValidation, ParseStrategyEnumeratesValidNames) {
  auto bogus = parse_strategy("simd");
  ASSERT_FALSE(bogus.ok());
  EXPECT_EQ(bogus.status().code(), api::StatusCode::kInvalidArgument);
  // The message must name every valid strategy, BackendRegistry-style.
  EXPECT_NE(bogus.status().message().find("exact"), std::string::npos);
  EXPECT_NE(bogus.status().message().find("hnsw"), std::string::npos);
  EXPECT_NE(bogus.status().message().find("'simd'"), std::string::npos);
}

TEST(QueryEngineValidation, ParseAggregateEnumeratesValidNames) {
  EXPECT_EQ(parse_aggregate("max").value(), Aggregate::kMax);
  EXPECT_EQ(parse_aggregate("mean").value(), Aggregate::kMean);
  auto bogus = parse_aggregate("median");
  ASSERT_FALSE(bogus.ok());
  EXPECT_NE(bogus.status().message().find("max"), std::string::npos);
  EXPECT_NE(bogus.status().message().find("mean"), std::string::npos);
}

}  // namespace
}  // namespace gosh::query
