// HNSW index — recall against the exact scan on a trained graph
// embedding (the headline acceptance metric), exhaustive-beam exactness,
// save/load round trips, and the corrupt-index error paths.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "gosh/api/api.hpp"

namespace gosh::query {
namespace {

// Process-unique: under `ctest -j` every gtest case is its own process,
// and HnswRecallTest's SetUpTestSuite rewrites its store per process — a
// shared name would let concurrent siblings corrupt each other's stores.
std::string temp_path(const std::string& name) {
  return testing::TempDir() + std::to_string(::getpid()) + "_" + name;
}

store::EmbeddingStore open_fresh(const std::string& path) {
  auto opened = store::EmbeddingStore::open(path);
  EXPECT_TRUE(opened.ok()) << opened.status().to_string();
  return std::move(opened).value();
}

// Shared fixture: one trained embedding per test binary run. Training is
// the expensive part (a real gosh::api pipeline over an LFR graph), so
// the store is written once and reopened per test.
class HnswRecallTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    store_path_ = new std::string(temp_path("hnsw_recall.gshs"));
    graph::LfrParams params;
    params.communities = 16;
    const graph::Graph g = graph::lfr_like(1200, params, 31);

    api::Options options;
    options.preset = "fast";
    options.train().dim = 32;
    options.gosh.total_epochs = 200;
    auto embedded = api::embed(g, options);
    ASSERT_TRUE(embedded.ok()) << embedded.status().to_string();
    ASSERT_TRUE(store::EmbeddingStore::write(embedded.value().embedding,
                                             *store_path_)
                    .is_ok());
  }
  static void TearDownTestSuite() {
    std::remove(store_path_->c_str());
    delete store_path_;
    store_path_ = nullptr;
  }

  static std::string* store_path_;
};

std::string* HnswRecallTest::store_path_ = nullptr;

double recall_at_k(const QueryEngine& engine, unsigned k,
                   std::size_t samples) {
  Rng rng(5);
  double hits = 0.0;
  for (std::size_t i = 0; i < samples; ++i) {
    const vid_t probe = rng.next_vertex(engine.rows());
    auto exact = engine.top_k_vertex(probe, k, Strategy::kExact);
    auto approx = engine.top_k_vertex(probe, k, Strategy::kHnsw);
    // Bail instead of touching value(): in a release build value() on an
    // error Result is UB (this exact spot once looped forever on garbage
    // vector bounds when a corrupted fixture store failed the query).
    EXPECT_TRUE(exact.ok() && approx.ok());
    if (!exact.ok() || !approx.ok()) return 0.0;
    for (const Neighbor& truth : exact.value()) {
      for (const Neighbor& got : approx.value()) {
        if (truth.id == got.id) {
          hits += 1.0;
          break;
        }
      }
    }
  }
  return hits / (static_cast<double>(samples) * k);
}

TEST_F(HnswRecallTest, RecallAt10AboveNinetyPercentOnTrainedEmbedding) {
  QueryEngine engine(open_fresh(*store_path_), {.ef_search = 64});
  ASSERT_TRUE(
      engine.build_index({.M = 16, .ef_construction = 200, .seed = 7})
          .is_ok());
  const double recall = recall_at_k(engine, 10, 100);
  EXPECT_GE(recall, 0.9) << "HNSW recall@10 degraded against exact scan";
}

TEST_F(HnswRecallTest, WiderBeamNeverHurtsRecall) {
  QueryEngineOptions narrow;
  narrow.ef_search = 10;
  QueryEngine narrow_engine(open_fresh(*store_path_), narrow);
  ASSERT_TRUE(narrow_engine
                  .build_index({.M = 8, .ef_construction = 64, .seed = 7})
                  .is_ok());
  const double narrow_recall = recall_at_k(narrow_engine, 10, 50);

  QueryEngineOptions wide = narrow;
  wide.ef_search = 256;
  QueryEngine wide_engine(open_fresh(*store_path_), wide);
  ASSERT_TRUE(wide_engine
                  .build_index({.M = 8, .ef_construction = 64, .seed = 7})
                  .is_ok());
  const double wide_recall = recall_at_k(wide_engine, 10, 50);
  EXPECT_GE(wide_recall + 1e-9, narrow_recall);
  EXPECT_GE(wide_recall, 0.9);
}

TEST_F(HnswRecallTest, SaveLoadRoundTripPreservesSearchResults) {
  const std::string index_path = temp_path("hnsw_roundtrip.hnsw");
  auto store = open_fresh(*store_path_);
  const HnswIndex built =
      HnswIndex::build(store, {.M = 12, .ef_construction = 100, .seed = 3});
  ASSERT_TRUE(built.save(index_path).is_ok());

  auto loaded = HnswIndex::load(index_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().to_string();
  EXPECT_EQ(loaded.value().M(), built.M());
  EXPECT_EQ(loaded.value().metric(), built.metric());
  EXPECT_EQ(loaded.value().max_level(), built.max_level());

  Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    const vid_t probe = rng.next_vertex(store.rows());
    const auto before = built.search(store, store.row(probe), 10, 64);
    const auto after = loaded.value().search(store, store.row(probe), 10, 64);
    ASSERT_EQ(before.size(), after.size());
    for (std::size_t j = 0; j < before.size(); ++j) {
      EXPECT_EQ(before[j].id, after[j].id) << "probe " << probe;
    }
  }
  std::remove(index_path.c_str());
}

TEST(HnswIndex, ExhaustiveBeamEqualsBruteForce) {
  // With ef >= rows the layer-0 beam touches every reachable node, so the
  // result must match the exact scan row for row.
  const std::string path = temp_path("hnsw_exhaustive.gshs");
  embedding::EmbeddingMatrix matrix(80, 6);
  matrix.initialize_random(2);
  ASSERT_TRUE(store::EmbeddingStore::write(matrix, path).is_ok());
  auto store = open_fresh(path);

  const HnswIndex index =
      HnswIndex::build(store, {.M = 8, .ef_construction = 80, .seed = 1});
  const auto inv = row_inverse_norms(store, Metric::kCosine);
  for (const vid_t probe : {0u, 17u, 79u}) {
    const auto approx = index.search(store, store.row(probe), 10, 200);
    const auto exact =
        scan_top_k(store, store.row(probe), 10, Metric::kCosine, inv).value();
    ASSERT_EQ(approx.size(), exact.size());
    for (std::size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ(approx[i].id, exact[i].id) << "probe " << probe;
    }
  }
  std::remove(path.c_str());
}

TEST(HnswIndex, BuildsUnderEveryMetric) {
  const std::string path = temp_path("hnsw_metrics.gshs");
  embedding::EmbeddingMatrix matrix(60, 5);
  matrix.initialize_random(4);
  ASSERT_TRUE(store::EmbeddingStore::write(matrix, path).is_ok());
  auto store = open_fresh(path);
  for (const Metric metric : {Metric::kCosine, Metric::kDot, Metric::kL2}) {
    const HnswIndex index = HnswIndex::build(
        store, {.M = 6, .ef_construction = 60, .metric = metric});
    const auto top = index.search(store, store.row(30), 5, 60);
    ASSERT_FALSE(top.empty()) << metric_name(metric);
    if (metric != Metric::kDot) {
      // Under cosine/L2 a stored row's best match is itself.
      EXPECT_EQ(top[0].id, 30u) << metric_name(metric);
    }
  }
  std::remove(path.c_str());
}

TEST(HnswIndex, EmptyStoreYieldsEmptyResults) {
  const std::string path = temp_path("hnsw_empty.gshs");
  ASSERT_TRUE(
      store::EmbeddingStore::write(embedding::EmbeddingMatrix(0, 3), path)
          .is_ok());
  auto store = open_fresh(path);
  const HnswIndex index = HnswIndex::build(store, {});
  const float query[3] = {1.0f, 0.0f, 0.0f};
  EXPECT_TRUE(index.search(store, {query, 3}, 5, 16).empty());
  std::remove(path.c_str());
}

TEST(HnswIndex, LoadRejectsMissingCorruptAndForeignFiles) {
  EXPECT_EQ(HnswIndex::load(temp_path("no_such_index.hnsw")).status().code(),
            api::StatusCode::kIoError);

  const std::string garbage = temp_path("hnsw_garbage.hnsw");
  { std::ofstream(garbage, std::ios::binary) << "GSHSnot an index at all"; }
  auto foreign = HnswIndex::load(garbage);
  EXPECT_EQ(foreign.status().code(), api::StatusCode::kIoError);
  std::remove(garbage.c_str());

  // Build a real index, then flip a byte in the middle.
  const std::string store_path = temp_path("hnsw_corrupt.gshs");
  embedding::EmbeddingMatrix matrix(40, 4);
  matrix.initialize_random(6);
  ASSERT_TRUE(store::EmbeddingStore::write(matrix, store_path).is_ok());
  auto store = open_fresh(store_path);
  const std::string index_path = temp_path("hnsw_corrupt.hnsw");
  ASSERT_TRUE(HnswIndex::build(store, {.M = 4}).save(index_path).is_ok());
  {
    std::fstream file(index_path,
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(64);
    char byte = 0;
    file.read(&byte, 1);
    file.seekp(64);
    byte = static_cast<char>(byte ^ 0x11);
    file.write(&byte, 1);
  }
  auto corrupt = HnswIndex::load(index_path);
  EXPECT_EQ(corrupt.status().code(), api::StatusCode::kIoError);
  EXPECT_NE(corrupt.status().message().find("checksum"), std::string::npos);
  std::remove(index_path.c_str());
  std::remove(store_path.c_str());
}

}  // namespace
}  // namespace gosh::query
