// Exact blocked scan — agreement with a naive reference under every
// metric, batch/single consistency, determinism across thread counts and
// block sizes, and edge cases (k > rows, tie ordering).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "gosh/common/rng.hpp"
#include "gosh/query/brute_force.hpp"

namespace gosh::query {
namespace {

struct Fixture {
  store::EmbeddingStore store;
  std::string path;
  std::uint32_t shard_count = 1;

  explicit Fixture(vid_t rows, unsigned dim, std::uint64_t seed = 17) {
    embedding::EmbeddingMatrix matrix(rows, dim);
    matrix.initialize_random(seed);
    path = testing::TempDir() + "brute_force_" + std::to_string(rows) + "_" +
           std::to_string(seed) + ".gshs";
    const std::uint64_t per_shard = rows / 3 + 1;
    shard_count = static_cast<std::uint32_t>((rows + per_shard - 1) / per_shard);
    EXPECT_TRUE(store::EmbeddingStore::write(matrix, path,
                                             {.rows_per_shard = per_shard})
                    .is_ok());
    auto opened = store::EmbeddingStore::open(path);
    EXPECT_TRUE(opened.ok()) << opened.status().to_string();
    store = std::move(opened).value();
  }
  ~Fixture() {
    for (std::uint32_t s = 0; s < shard_count; ++s) {
      std::remove(
          store::EmbeddingStore::shard_path(path, s, shard_count).c_str());
    }
  }
};

// Naive reference: score every row, sort, truncate.
std::vector<Neighbor> reference_top_k(const store::EmbeddingStore& store,
                                      std::span<const float> query, unsigned k,
                                      Metric metric) {
  const auto inv = row_inverse_norms(store, metric);
  const float query_inv =
      metric == Metric::kCosine ? inverse_norm(query.data(), store.dim()) : 0.0f;
  std::vector<Neighbor> all;
  for (vid_t v = 0; v < store.rows(); ++v) {
    all.push_back({v, similarity(metric, query.data(), store.row(v).data(),
                                 store.dim(),
                                 query_inv, metric == Metric::kCosine
                                                ? inv[v]
                                                : 0.0f)});
  }
  std::sort(all.begin(), all.end(), better);
  if (all.size() > k) all.resize(k);
  return all;
}

TEST(BruteForce, MatchesNaiveReferenceUnderEveryMetric) {
  Fixture fx(97, 9);
  const auto query = fx.store.row(13);
  for (const Metric metric : {Metric::kCosine, Metric::kDot, Metric::kL2}) {
    const auto inv = row_inverse_norms(fx.store, metric);
    const auto got = scan_top_k(fx.store, query, 7, metric, inv);
    const auto expected = reference_top_k(fx.store, query, 7, metric);
    ASSERT_EQ(got.size(), expected.size()) << metric_name(metric);
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, expected[i].id)
          << metric_name(metric) << " rank " << i;
      EXPECT_FLOAT_EQ(got[i].score, expected[i].score);
    }
  }
}

TEST(BruteForce, DeterministicAcrossThreadAndBlockShapes) {
  Fixture fx(211, 6);
  const auto query = fx.store.row(0);
  const auto inv = row_inverse_norms(fx.store, Metric::kCosine);
  const auto baseline =
      scan_top_k(fx.store, query, 10, Metric::kCosine, inv,
                 {.threads = 1, .block_rows = 1024});
  for (const ScanOptions options :
       {ScanOptions{.threads = 4, .block_rows = 1},
        ScanOptions{.threads = 3, .block_rows = 7},
        ScanOptions{.threads = 0, .block_rows = 100000}}) {
    const auto got =
        scan_top_k(fx.store, query, 10, Metric::kCosine, inv, options);
    ASSERT_EQ(got.size(), baseline.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, baseline[i].id) << "rank " << i;
    }
  }
}

TEST(BruteForce, BatchAgreesWithSingleQueries) {
  Fixture fx(64, 8);
  const unsigned d = fx.store.dim();
  const auto inv = row_inverse_norms(fx.store, Metric::kL2);
  std::vector<float> queries;
  for (const vid_t v : {3u, 31u, 63u}) {
    const auto row = fx.store.row(v);
    queries.insert(queries.end(), row.begin(), row.end());
  }
  const auto batched =
      scan_top_k_batch(fx.store, queries, 3, 5, Metric::kL2, inv);
  ASSERT_EQ(batched.size(), 3u);
  for (std::size_t q = 0; q < 3; ++q) {
    const auto single = scan_top_k(
        fx.store, std::span<const float>(queries).subspan(q * d, d), 5,
        Metric::kL2, inv);
    ASSERT_EQ(batched[q].size(), single.size());
    for (std::size_t i = 0; i < single.size(); ++i) {
      EXPECT_EQ(batched[q][i].id, single[i].id);
    }
  }
}

TEST(BruteForce, SelfIsTheBestMatchForItsOwnRow) {
  Fixture fx(50, 12);
  for (const Metric metric : {Metric::kCosine, Metric::kL2}) {
    const auto inv = row_inverse_norms(fx.store, metric);
    const auto top = scan_top_k(fx.store, fx.store.row(21), 3, metric, inv);
    ASSERT_FALSE(top.empty());
    EXPECT_EQ(top[0].id, 21u) << metric_name(metric);
  }
}

TEST(BruteForce, KBeyondRowsReturnsEveryRowRanked) {
  Fixture fx(6, 4);
  const auto inv = row_inverse_norms(fx.store, Metric::kCosine);
  const auto top =
      scan_top_k(fx.store, fx.store.row(2), 100, Metric::kCosine, inv);
  EXPECT_EQ(top.size(), 6u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_TRUE(better(top[i - 1], top[i]) || top[i - 1].score == top[i].score);
  }
}

TEST(BruteForce, KZeroAndEmptyBatchAreEmpty) {
  Fixture fx(10, 4);
  const auto inv = row_inverse_norms(fx.store, Metric::kCosine);
  EXPECT_TRUE(
      scan_top_k(fx.store, fx.store.row(0), 0, Metric::kCosine, inv).empty());
  EXPECT_TRUE(scan_top_k_batch(fx.store, {}, 0, 5, Metric::kCosine, inv)
                  .empty());
}

}  // namespace
}  // namespace gosh::query
