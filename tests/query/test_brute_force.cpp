// Exact blocked scan — agreement with a naive reference under every
// metric, batch/single consistency, determinism across thread counts and
// block sizes (at every available SIMD ISA), malformed-shape Status
// propagation, and edge cases (k > rows, tie ordering).
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "gosh/common/rng.hpp"
#include "gosh/common/simd.hpp"
#include "gosh/query/brute_force.hpp"

namespace gosh::query {
namespace {

/// Unwraps a scan Result; a Status failure is a test failure carrying the
/// status text instead of an abort inside Result::value().
template <typename T>
T must(api::Result<T> result) {
  EXPECT_TRUE(result.ok()) << result.status().to_string();
  return std::move(result).value();
}

struct Fixture {
  store::EmbeddingStore store;
  std::string path;
  std::uint32_t shard_count = 1;

  explicit Fixture(vid_t rows, unsigned dim, std::uint64_t seed = 17) {
    embedding::EmbeddingMatrix matrix(rows, dim);
    matrix.initialize_random(seed);
    // getpid(): concurrent `ctest -j` test processes with the same fixture
    // shape must not rewrite each other's stores mid-scan.
    path = testing::TempDir() + "brute_force_" + std::to_string(::getpid()) +
           "_" + std::to_string(rows) + "_" + std::to_string(seed) + ".gshs";
    const std::uint64_t per_shard = rows / 3 + 1;
    shard_count = static_cast<std::uint32_t>((rows + per_shard - 1) / per_shard);
    EXPECT_TRUE(store::EmbeddingStore::write(matrix, path,
                                             {.rows_per_shard = per_shard})
                    .is_ok());
    auto opened = store::EmbeddingStore::open(path);
    EXPECT_TRUE(opened.ok()) << opened.status().to_string();
    store = std::move(opened).value();
  }
  ~Fixture() {
    for (std::uint32_t s = 0; s < shard_count; ++s) {
      std::remove(
          store::EmbeddingStore::shard_path(path, s, shard_count).c_str());
    }
  }
};

// Naive reference: score every row, sort, truncate.
std::vector<Neighbor> reference_top_k(const store::EmbeddingStore& store,
                                      std::span<const float> query, unsigned k,
                                      Metric metric) {
  const auto inv = row_inverse_norms(store, metric);
  const float query_inv =
      metric == Metric::kCosine ? inverse_norm(query.data(), store.dim()) : 0.0f;
  std::vector<Neighbor> all;
  for (vid_t v = 0; v < store.rows(); ++v) {
    all.push_back({v, similarity(metric, query.data(), store.row(v).data(),
                                 store.dim(),
                                 query_inv, metric == Metric::kCosine
                                                ? inv[v]
                                                : 0.0f)});
  }
  std::sort(all.begin(), all.end(), better);
  if (all.size() > k) all.resize(k);
  return all;
}

TEST(BruteForce, MatchesNaiveReferenceUnderEveryMetric) {
  Fixture fx(97, 9);
  const auto query = fx.store.row(13);
  for (const Metric metric : {Metric::kCosine, Metric::kDot, Metric::kL2}) {
    const auto inv = row_inverse_norms(fx.store, metric);
    const auto got = must(scan_top_k(fx.store, query, 7, metric, inv));
    const auto expected = reference_top_k(fx.store, query, 7, metric);
    ASSERT_EQ(got.size(), expected.size()) << metric_name(metric);
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, expected[i].id)
          << metric_name(metric) << " rank " << i;
      EXPECT_FLOAT_EQ(got[i].score, expected[i].score);
    }
  }
}

TEST(BruteForce, DeterministicAcrossThreadAndBlockShapes) {
  Fixture fx(211, 6);
  const auto query = fx.store.row(0);
  const auto inv = row_inverse_norms(fx.store, Metric::kCosine);
  const auto baseline =
      must(scan_top_k(fx.store, query, 10, Metric::kCosine, inv,
                      {.threads = 1, .block_rows = 1024}));
  for (const ScanOptions options :
       {ScanOptions{.threads = 4, .block_rows = 1},
        ScanOptions{.threads = 3, .block_rows = 7},
        ScanOptions{.threads = 0, .block_rows = 100000}}) {
    const auto got =
        must(scan_top_k(fx.store, query, 10, Metric::kCosine, inv, options));
    ASSERT_EQ(got.size(), baseline.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, baseline[i].id) << "rank " << i;
    }
  }
}

// The register-tiled scan must answer identically — ids AND score bits —
// however rows land on threads and blocks, at every ISA the host supports.
TEST(BruteForce, DeterministicAcrossThreadCountsAtEachForcedIsa) {
  Fixture fx(157, 19);
  simd::ScopedIsa guard;
  const unsigned d = fx.store.dim();
  // Two queries, the second holding two vectors, to drive the multi path.
  std::vector<float> vectors;
  for (const vid_t v : {7u, 60u, 101u}) {
    const auto row = fx.store.row(v);
    vectors.insert(vectors.end(), row.begin(), row.end());
  }
  const std::vector<std::size_t> counts = {1, 2};
  ASSERT_EQ(vectors.size(), 3u * d);

  for (const simd::Isa isa : {simd::Isa::kScalar, simd::Isa::kAvx2,
                              simd::Isa::kAvx512, simd::Isa::kNeon}) {
    if (simd::kernel_table(isa) == nullptr) continue;
    ASSERT_TRUE(simd::force_isa(isa));
    for (const Metric metric : {Metric::kCosine, Metric::kDot, Metric::kL2}) {
      const auto inv = row_inverse_norms(fx.store, metric);
      const auto baseline =
          must(scan_top_k_multi(fx.store, vectors, counts, 12, metric, inv,
                                Aggregate::kMean, {},
                                {.threads = 1, .block_rows = 4096}));
      for (const ScanOptions options :
           {ScanOptions{.threads = 2, .block_rows = 3},
            ScanOptions{.threads = 4, .block_rows = 32},
            ScanOptions{.threads = 3, .block_rows = 1}}) {
        const auto got = must(scan_top_k_multi(fx.store, vectors, counts, 12,
                                               metric, inv, Aggregate::kMean, {},
                                               options));
        ASSERT_EQ(got.size(), baseline.size());
        for (std::size_t q = 0; q < got.size(); ++q) {
          ASSERT_EQ(got[q].size(), baseline[q].size());
          for (std::size_t i = 0; i < got[q].size(); ++i) {
            EXPECT_EQ(got[q][i].id, baseline[q][i].id)
                << simd::isa_name(isa) << " " << metric_name(metric)
                << " query " << q << " rank " << i;
            // Bit-for-bit at a fixed ISA, not merely close.
            EXPECT_EQ(got[q][i].score, baseline[q][i].score)
                << simd::isa_name(isa) << " " << metric_name(metric);
          }
        }
      }
    }
  }
}

TEST(BruteForce, MalformedVectorCountsAreInvalidArgumentNotAnOverread) {
  Fixture fx(30, 8);
  const auto inv = row_inverse_norms(fx.store, Metric::kCosine);
  const auto query = fx.store.row(3);  // 8 floats
  // Counts claim two vectors but the buffer holds one.
  const std::vector<std::size_t> counts = {2};
  const auto got = scan_top_k_multi(fx.store, query, counts, 5,
                                    Metric::kCosine, inv, Aggregate::kMax, {});
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), api::StatusCode::kInvalidArgument);

  // Batch variant with a short buffer fails the same way.
  const auto batched =
      scan_top_k_batch(fx.store, query, 3, 5, Metric::kCosine, inv);
  ASSERT_FALSE(batched.ok());
  EXPECT_EQ(batched.status().code(), api::StatusCode::kInvalidArgument);
}

TEST(BruteForce, MissingCosineNormsAreInvalidArgument) {
  Fixture fx(30, 8);
  const std::vector<float> truncated_norms(10, 1.0f);  // store has 30 rows
  const auto got = scan_top_k(fx.store, fx.store.row(0), 5, Metric::kCosine,
                              truncated_norms);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), api::StatusCode::kInvalidArgument);
}

TEST(BruteForce, BatchAgreesWithSingleQueries) {
  Fixture fx(64, 8);
  const unsigned d = fx.store.dim();
  const auto inv = row_inverse_norms(fx.store, Metric::kL2);
  std::vector<float> queries;
  for (const vid_t v : {3u, 31u, 63u}) {
    const auto row = fx.store.row(v);
    queries.insert(queries.end(), row.begin(), row.end());
  }
  const auto batched =
      must(scan_top_k_batch(fx.store, queries, 3, 5, Metric::kL2, inv));
  ASSERT_EQ(batched.size(), 3u);
  for (std::size_t q = 0; q < 3; ++q) {
    const auto single = must(scan_top_k(
             fx.store, std::span<const float>(queries).subspan(q * d, d), 5,
             Metric::kL2, inv));
    ASSERT_EQ(batched[q].size(), single.size());
    for (std::size_t i = 0; i < single.size(); ++i) {
      EXPECT_EQ(batched[q][i].id, single[i].id);
    }
  }
}

TEST(BruteForce, SelfIsTheBestMatchForItsOwnRow) {
  Fixture fx(50, 12);
  for (const Metric metric : {Metric::kCosine, Metric::kL2}) {
    const auto inv = row_inverse_norms(fx.store, metric);
    const auto top =
        must(scan_top_k(fx.store, fx.store.row(21), 3, metric, inv));
    ASSERT_FALSE(top.empty());
    EXPECT_EQ(top[0].id, 21u) << metric_name(metric);
  }
}

TEST(BruteForce, KBeyondRowsReturnsEveryRowRanked) {
  Fixture fx(6, 4);
  const auto inv = row_inverse_norms(fx.store, Metric::kCosine);
  const auto top =
      must(scan_top_k(fx.store, fx.store.row(2), 100, Metric::kCosine, inv));
  EXPECT_EQ(top.size(), 6u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_TRUE(better(top[i - 1], top[i]) || top[i - 1].score == top[i].score);
  }
}

TEST(BruteForce, KZeroAndEmptyBatchAreEmpty) {
  Fixture fx(10, 4);
  const auto inv = row_inverse_norms(fx.store, Metric::kCosine);
  EXPECT_TRUE(must(scan_top_k(fx.store, fx.store.row(0), 0, Metric::kCosine, inv))
                  .empty());
  EXPECT_TRUE(must(scan_top_k_batch(fx.store, {}, 0, 5, Metric::kCosine, inv))
                  .empty());
}

TEST(BruteForce, FilteredScanOnlyReturnsPassingRows) {
  Fixture fx(80, 6);
  const auto inv = row_inverse_norms(fx.store, Metric::kCosine);
  const auto query = fx.store.row(5);
  const std::vector<std::size_t> counts = {1};
  const RowFilter even = [](vid_t v) { return v % 2 == 0; };
  const auto filtered = must(scan_top_k_multi(fx.store, query, counts, 10,
                                              Metric::kCosine, inv,
                                              Aggregate::kMax, even));
  ASSERT_EQ(filtered.size(), 1u);
  ASSERT_EQ(filtered[0].size(), 10u);
  for (const Neighbor& n : filtered[0]) EXPECT_EQ(n.id % 2, 0u);

  // Equivalent to scanning only the allowed rows: the top filtered answer
  // must rank at least as high as any even row of the unfiltered order.
  const auto all = reference_top_k(fx.store, query, 80, Metric::kCosine);
  std::vector<Neighbor> expected;
  for (const Neighbor& n : all) {
    if (n.id % 2 == 0) expected.push_back(n);
  }
  expected.resize(10);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(filtered[0][i].id, expected[i].id) << "rank " << i;
  }
}

TEST(BruteForce, MultiVectorMaxTakesTheBestPerCandidate) {
  Fixture fx(60, 5);
  const unsigned d = fx.store.dim();
  const auto inv = row_inverse_norms(fx.store, Metric::kDot);
  // One query made of rows 2 and 40: under kMax each candidate scores its
  // better similarity, so both probes must rank themselves on top.
  std::vector<float> vectors;
  for (const vid_t v : {2u, 40u}) {
    const auto row = fx.store.row(v);
    vectors.insert(vectors.end(), row.begin(), row.end());
  }
  const std::vector<std::size_t> counts = {2};
  const auto got = must(scan_top_k_multi(fx.store, vectors, counts, 60,
                                         Metric::kDot, inv, Aggregate::kMax, {}));
  ASSERT_EQ(got.size(), 1u);

  // Naive reference.
  std::vector<Neighbor> expected;
  for (vid_t v = 0; v < 60; ++v) {
    const float* row = fx.store.row(v).data();
    const float a = dot(vectors.data(), row, d);
    const float b = dot(vectors.data() + d, row, d);
    expected.push_back({v, std::max(a, b)});
  }
  std::sort(expected.begin(), expected.end(), better);
  ASSERT_EQ(got[0].size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(got[0][i].id, expected[i].id) << "rank " << i;
    EXPECT_FLOAT_EQ(got[0][i].score, expected[i].score);
  }
}

TEST(BruteForce, MultiVectorMeanAveragesPerCandidate) {
  Fixture fx(40, 7);
  const unsigned d = fx.store.dim();
  const auto inv = row_inverse_norms(fx.store, Metric::kL2);
  std::vector<float> vectors;
  for (const vid_t v : {1u, 17u, 33u}) {
    const auto row = fx.store.row(v);
    vectors.insert(vectors.end(), row.begin(), row.end());
  }
  const std::vector<std::size_t> counts = {3};
  const auto got = must(scan_top_k_multi(fx.store, vectors, counts, 8, Metric::kL2,
                                         inv, Aggregate::kMean, {}));
  ASSERT_EQ(got[0].size(), 8u);

  std::vector<Neighbor> expected;
  for (vid_t v = 0; v < 40; ++v) {
    const float* row = fx.store.row(v).data();
    float sum = 0.0f;
    for (int i = 0; i < 3; ++i) sum += -l2_squared(vectors.data() + i * d, row, d);
    expected.push_back({v, sum / 3.0f});
  }
  std::sort(expected.begin(), expected.end(), better);
  for (std::size_t i = 0; i < got[0].size(); ++i) {
    EXPECT_EQ(got[0][i].id, expected[i].id) << "rank " << i;
    EXPECT_FLOAT_EQ(got[0][i].score, expected[i].score);
  }
}

TEST(BruteForce, MixedCountsBatchAgreesWithSeparateScans) {
  Fixture fx(50, 6);
  const unsigned d = fx.store.dim();
  const auto inv = row_inverse_norms(fx.store, Metric::kCosine);
  // Query 0: single vector (row 4); query 1: two vectors (rows 9, 30).
  std::vector<float> vectors;
  for (const vid_t v : {4u, 9u, 30u}) {
    const auto row = fx.store.row(v);
    vectors.insert(vectors.end(), row.begin(), row.end());
  }
  const std::vector<std::size_t> counts = {1, 2};
  const auto batched = must(scan_top_k_multi(fx.store, vectors, counts, 6,
                                             Metric::kCosine, inv, Aggregate::kMax,
                                             {}));
  ASSERT_EQ(batched.size(), 2u);

  const auto single = must(scan_top_k(
           fx.store, std::span<const float>(vectors).subspan(0, d), 6,
           Metric::kCosine, inv));
  const std::vector<std::size_t> pair_count = {2};
  const auto pair = must(scan_top_k_multi(
           fx.store, std::span<const float>(vectors).subspan(d, 2 * d), pair_count,
           6, Metric::kCosine, inv, Aggregate::kMax, {}));
  ASSERT_EQ(batched[0].size(), single.size());
  for (std::size_t i = 0; i < single.size(); ++i) {
    EXPECT_EQ(batched[0][i].id, single[i].id);
  }
  ASSERT_EQ(batched[1].size(), pair[0].size());
  for (std::size_t i = 0; i < pair[0].size(); ++i) {
    EXPECT_EQ(batched[1][i].id, pair[0][i].id);
  }
}

TEST(BruteForce, FilterRejectingEverythingYieldsEmptyAnswers) {
  Fixture fx(30, 4);
  const auto inv = row_inverse_norms(fx.store, Metric::kCosine);
  const auto query = fx.store.row(0);
  const std::vector<std::size_t> counts = {1};
  const auto got = must(scan_top_k_multi(fx.store, query, counts, 5,
                                         Metric::kCosine, inv, Aggregate::kMax,
                                         [](vid_t) { return false; }));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_TRUE(got[0].empty());
}

}  // namespace
}  // namespace gosh::query
