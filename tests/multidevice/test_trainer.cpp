// Multi-device (data-parallel replica) training.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "gosh/embedding/update.hpp"
#include "gosh/graph/builder.hpp"
#include "gosh/graph/generators.hpp"
#include "gosh/multidevice/trainer.hpp"

namespace gosh::multidevice {
namespace {

graph::Graph two_cliques(vid_t clique = 8) {
  std::vector<graph::Edge> edges;
  for (vid_t u = 0; u < clique; ++u) {
    for (vid_t v = u + 1; v < clique; ++v) {
      edges.emplace_back(u, v);
      edges.emplace_back(clique + u, clique + v);
    }
  }
  edges.emplace_back(0, clique);
  return graph::build_csr(2 * clique, std::move(edges));
}

float separation(const embedding::EmbeddingMatrix& m, vid_t clique) {
  float intra = 0.0f, inter = 0.0f;
  int intra_n = 0, inter_n = 0;
  for (vid_t u = 0; u < 2 * clique; ++u) {
    for (vid_t v = u + 1; v < 2 * clique; ++v) {
      const float d =
          embedding::dot(m.row(u).data(), m.row(v).data(), m.dim());
      if ((u < clique) == (v < clique)) {
        intra += d;
        intra_n++;
      } else {
        inter += d;
        inter_n++;
      }
    }
  }
  return intra / intra_n - inter / inter_n;
}

simt::DeviceConfig one_worker_device() {
  simt::DeviceConfig config;
  config.memory_bytes = 32u << 20;
  config.workers = 1;
  return config;
}

TEST(MultiDevice, RequiresAtLeastOneDevice) {
  const auto g = two_cliques();
  embedding::TrainConfig config;
  config.dim = 8;
  std::vector<simt::Device*> none;
  EXPECT_THROW(MultiDeviceTrainer(none, g, config), std::invalid_argument);
}

TEST(MultiDevice, SingleDeviceMatchesDeviceTrainer) {
  const auto g = two_cliques();
  embedding::TrainConfig config;
  config.dim = 8;
  config.seed = 3;

  simt::Device direct_device(one_worker_device());
  embedding::EmbeddingMatrix direct(g.num_vertices(), 8);
  direct.initialize_random(1);
  {
    // The multi-device wrapper derives replica seeds as hash(seed, r), so
    // replicate that for the reference run.
    embedding::TrainConfig reference = config;
    reference.seed = hash_combine(config.seed, 0);
    embedding::DeviceTrainer trainer(direct_device, g, reference);
    trainer.train(direct, 20);
  }

  simt::Device multi_device(one_worker_device());
  std::vector<simt::Device*> devices = {&multi_device};
  MultiDeviceTrainer trainer(devices, g, config);
  embedding::EmbeddingMatrix multi(g.num_vertices(), 8);
  multi.initialize_random(1);
  trainer.train(multi, 20);

  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct.data()[i], multi.data()[i]);
  }
}

TEST(MultiDevice, TwoReplicasLearnCommunities) {
  const auto g = two_cliques();
  simt::Device a(one_worker_device()), b(one_worker_device());
  std::vector<simt::Device*> devices = {&a, &b};

  embedding::TrainConfig config;
  config.dim = 16;
  config.learning_rate = 0.05f;
  MultiDeviceConfig multi;
  multi.sync_interval = 10;
  MultiDeviceTrainer trainer(devices, g, config, multi);

  embedding::EmbeddingMatrix m(g.num_vertices(), 16);
  m.initialize_random(2);
  trainer.train(m, 300);
  EXPECT_GT(separation(m, 8), 0.1f);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_TRUE(std::isfinite(m.data()[i]));
  }
}

class MultiDeviceReplicaTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(MultiDeviceReplicaTest, AnyReplicaCountTrains) {
  const auto g = graph::rmat(9, 2000, 31);
  std::vector<std::unique_ptr<simt::Device>> owned;
  std::vector<simt::Device*> devices;
  for (unsigned r = 0; r < GetParam(); ++r) {
    owned.push_back(std::make_unique<simt::Device>(one_worker_device()));
    devices.push_back(owned.back().get());
  }
  embedding::TrainConfig config;
  config.dim = 8;
  MultiDeviceTrainer trainer(devices, g, config);
  EXPECT_EQ(trainer.replicas(), GetParam());

  embedding::EmbeddingMatrix m(g.num_vertices(), 8);
  m.initialize_random(4);
  trainer.train(m, 25);
  for (std::size_t i = 0; i < m.size(); ++i) {
    ASSERT_TRUE(std::isfinite(m.data()[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(Replicas, MultiDeviceReplicaTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(MultiDevice, SyncIntervalLargerThanPassesIsOneBlock) {
  const auto g = two_cliques();
  simt::Device a(one_worker_device()), b(one_worker_device());
  std::vector<simt::Device*> devices = {&a, &b};
  embedding::TrainConfig config;
  config.dim = 8;
  MultiDeviceConfig multi;
  multi.sync_interval = 1000;  // > passes
  MultiDeviceTrainer trainer(devices, g, config, multi);
  embedding::EmbeddingMatrix m(g.num_vertices(), 8);
  m.initialize_random(5);
  trainer.train(m, 10);
  for (std::size_t i = 0; i < m.size(); ++i) {
    ASSERT_TRUE(std::isfinite(m.data()[i]));
  }
}

}  // namespace
}  // namespace gosh::multidevice
