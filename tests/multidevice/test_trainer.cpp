// Multi-device (data-parallel replica) training through the gosh::api
// facade ("multidevice" backend). The single-replica equivalence check
// still drives the embedding-layer DeviceTrainer directly as its
// reference, which is the engine the replicas wrap.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gosh/api/api.hpp"
#include "gosh/embedding/trainer.hpp"

namespace gosh {
namespace {

graph::Graph two_cliques(vid_t clique = 8) {
  std::vector<graph::Edge> edges;
  for (vid_t u = 0; u < clique; ++u) {
    for (vid_t v = u + 1; v < clique; ++v) {
      edges.emplace_back(u, v);
      edges.emplace_back(clique + u, clique + v);
    }
  }
  edges.emplace_back(0, clique);
  return graph::build_csr(2 * clique, std::move(edges));
}

float separation(const embedding::EmbeddingMatrix& m, vid_t clique) {
  float intra = 0.0f, inter = 0.0f;
  int intra_n = 0, inter_n = 0;
  for (vid_t u = 0; u < 2 * clique; ++u) {
    for (vid_t v = u + 1; v < 2 * clique; ++v) {
      const float d =
          embedding::dot(m.row(u).data(), m.row(v).data(), m.dim());
      if ((u < clique) == (v < clique)) {
        intra += d;
        intra_n++;
      } else {
        inter += d;
        inter_n++;
      }
    }
  }
  return intra / intra_n - inter / inter_n;
}

/// One-worker emulated devices and raw per-|V| passes, so replica runs are
/// deterministic and the pass count is exactly total_epochs.
api::Options multidevice_options(unsigned replicas, unsigned dim,
                                 unsigned passes) {
  api::Options options;
  options.backend = "multidevice";
  options.num_devices = replicas;
  options.train().dim = dim;
  options.gosh.edge_epochs = false;
  options.gosh.total_epochs = passes;
  options.device.memory_bytes = 32u << 20;
  options.device.workers = 1;
  return options;
}

TEST(MultiDevice, RequiresAtLeastOneDevice) {
  api::Options options = multidevice_options(1, 8, 10);
  options.num_devices = 0;
  auto result = api::embed(two_cliques(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), api::StatusCode::kInvalidArgument);
}

TEST(MultiDevice, SingleDeviceMatchesDeviceTrainer) {
  const auto g = two_cliques();
  api::Options options = multidevice_options(1, 8, 20);
  options.train().seed = 3;
  auto multi = api::embed(g, options);
  ASSERT_TRUE(multi.ok()) << multi.status().to_string();

  // Reference: the facade initializes from train.seed and the multi-device
  // wrapper derives replica seeds as hash(seed, r) — replicate both.
  simt::Device device(options.device);
  embedding::EmbeddingMatrix direct(g.num_vertices(), 8);
  direct.initialize_random(3);
  embedding::TrainConfig reference = options.train();
  reference.seed = hash_combine(options.train().seed, 0);
  embedding::DeviceTrainer trainer(device, g, reference);
  trainer.train(direct, 20);

  const embedding::EmbeddingMatrix& replicated = multi.value().embedding;
  ASSERT_EQ(replicated.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct.data()[i], replicated.data()[i]);
  }
}

TEST(MultiDevice, TwoReplicasLearnCommunities) {
  api::Options options = multidevice_options(2, 16, 300);
  options.train().learning_rate = 0.05f;
  options.train().seed = 2;
  options.sync_interval = 10;
  auto result = api::embed(two_cliques(), options);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_GT(separation(result.value().embedding, 8), 0.1f);
  for (std::size_t i = 0; i < result.value().embedding.size(); ++i) {
    EXPECT_TRUE(std::isfinite(result.value().embedding.data()[i]));
  }
}

class MultiDeviceReplicaTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(MultiDeviceReplicaTest, AnyReplicaCountTrains) {
  const auto g = graph::rmat(9, 2000, 31);
  api::Options options = multidevice_options(GetParam(), 8, 25);
  options.train().seed = 4;
  auto result = api::embed(g, options);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(result.value().backend, "multidevice");
  for (std::size_t i = 0; i < result.value().embedding.size(); ++i) {
    ASSERT_TRUE(std::isfinite(result.value().embedding.data()[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(Replicas, MultiDeviceReplicaTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(MultiDevice, SyncIntervalLargerThanPassesIsOneBlock) {
  api::Options options = multidevice_options(2, 8, 10);
  options.train().seed = 5;
  options.sync_interval = 1000;  // > passes
  auto result = api::embed(two_cliques(), options);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  for (std::size_t i = 0; i < result.value().embedding.size(); ++i) {
    ASSERT_TRUE(std::isfinite(result.value().embedding.data()[i]));
  }
}

}  // namespace
}  // namespace gosh
