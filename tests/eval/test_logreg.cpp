// Logistic regression fitting (batch and SGD solvers).
#include <gtest/gtest.h>

#include "gosh/common/rng.hpp"
#include "gosh/eval/aucroc.hpp"
#include "gosh/eval/logreg.hpp"

namespace gosh::eval {
namespace {

/// Linearly separable 2-feature set: label = [x0 + x1 > 0].
EdgeFeatureSet separable_set(std::size_t n, std::uint64_t seed) {
  EdgeFeatureSet set;
  set.dim = 2;
  set.features.resize(n * 2);
  set.labels.resize(n);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const float x0 = rng.next_float() * 2.0f - 1.0f;
    const float x1 = rng.next_float() * 2.0f - 1.0f;
    set.features[i * 2] = x0;
    set.features[i * 2 + 1] = x1;
    set.labels[i] = x0 + x1 > 0.0f ? 1 : 0;
  }
  return set;
}

TEST(LogRegBatch, SeparatesLinearData) {
  const auto data = separable_set(2000, 1);
  LogisticRegression model;
  model.fit(data);
  const auto scores = model.predict(data);
  EXPECT_GT(auc_roc(scores, data.labels), 0.99);
}

TEST(LogRegBatch, LearnsPositiveWeightsForPositiveSignal) {
  const auto data = separable_set(2000, 2);
  LogisticRegression model;
  model.fit(data);
  EXPECT_GT(model.weights()[0], 0.0);
  EXPECT_GT(model.weights()[1], 0.0);
}

TEST(LogRegSgd, SeparatesLinearData) {
  const auto data = separable_set(2000, 3);
  LogRegConfig config;
  config.solver = LogRegConfig::Solver::kSgd;
  config.max_iterations = 30;
  LogisticRegression model(config);
  model.fit(data);
  const auto scores = model.predict(data);
  EXPECT_GT(auc_roc(scores, data.labels), 0.98);
}

TEST(LogReg, ProbabilitiesAreCalibratedDirectionally) {
  const auto data = separable_set(2000, 4);
  LogisticRegression model;
  model.fit(data);
  float strong_positive[2] = {1.0f, 1.0f};
  float strong_negative[2] = {-1.0f, -1.0f};
  EXPECT_GT(model.predict_probability(strong_positive), 0.9f);
  EXPECT_LT(model.predict_probability(strong_negative), 0.1f);
}

TEST(LogReg, BalancedNoiseStaysNearHalf) {
  EdgeFeatureSet data;
  data.dim = 4;
  const std::size_t n = 3000;
  data.features.resize(n * 4);
  data.labels.resize(n);
  Rng rng(5);
  for (std::size_t i = 0; i < n; ++i) {
    for (unsigned j = 0; j < 4; ++j) {
      data.features[i * 4 + j] = rng.next_float() - 0.5f;
    }
    data.labels[i] = static_cast<uint8_t>(rng.next_bounded(2));
  }
  LogisticRegression model;
  model.fit(data);
  const auto scores = model.predict(data);
  EXPECT_NEAR(auc_roc(scores, data.labels), 0.5, 0.06);
}

TEST(LogReg, L2ShrinksWeights) {
  const auto data = separable_set(1000, 6);
  LogRegConfig strong;
  strong.l2 = 1.0;
  LogRegConfig weak;
  weak.l2 = 1e-6;
  LogisticRegression strong_model(strong), weak_model(weak);
  strong_model.fit(data);
  weak_model.fit(data);
  EXPECT_LT(std::abs(strong_model.weights()[0]),
            std::abs(weak_model.weights()[0]));
}

}  // namespace
}  // namespace gosh::eval
