// Link-prediction and node-classification pipelines end to end.
#include <gtest/gtest.h>

#include "gosh/api/api.hpp"

namespace gosh::eval {
namespace {

TEST(NegativeSampling, AvoidsEdgesAndSelfPairs) {
  const auto g = graph::erdos_renyi(200, 2000, 51);
  const auto negatives = sample_negative_edges(g, 500, 1);
  EXPECT_EQ(negatives.size(), 500u);
  for (const auto& [u, v] : negatives) {
    EXPECT_NE(u, v);
    EXPECT_FALSE(graph::has_arc(g, u, v));
  }
}

TEST(NegativeSampling, RespectsExtraExclusions) {
  const auto g = graph::erdos_renyi(100, 200, 52);
  std::vector<graph::Edge> exclude;
  for (vid_t u = 0; u < 50; ++u) {
    for (vid_t v = 50; v < 100; ++v) exclude.emplace_back(u, v);
  }
  // Only pairs inside [0,50) or [50,100) remain eligible.
  const auto negatives = sample_negative_edges(g, 300, 2, exclude);
  for (const auto& [u, v] : negatives) {
    EXPECT_EQ(u < 50, v < 50) << u << "," << v;
  }
}

TEST(Features, HadamardProducts) {
  embedding::EmbeddingMatrix m(3, 2);
  m.row(0)[0] = 1.0f; m.row(0)[1] = 2.0f;
  m.row(1)[0] = 3.0f; m.row(1)[1] = -1.0f;
  m.row(2)[0] = 0.5f; m.row(2)[1] = 4.0f;
  const auto set = build_edge_features(m, {{0, 1}}, {{1, 2}});
  ASSERT_EQ(set.size(), 2u);
  EXPECT_FLOAT_EQ(set.row(0)[0], 3.0f);
  EXPECT_FLOAT_EQ(set.row(0)[1], -2.0f);
  EXPECT_EQ(set.labels[0], 1);
  EXPECT_FLOAT_EQ(set.row(1)[0], 1.5f);
  EXPECT_FLOAT_EQ(set.row(1)[1], -4.0f);
  EXPECT_EQ(set.labels[1], 0);
}

TEST(LinkPrediction, GoodEmbeddingScoresHighAuc) {
  // Full pipeline at miniature scale: LFR community graph (the learnable
  // structure real social graphs have), 80/20 split, GOSH embedding,
  // logistic regression. The bar (0.8) is well above chance and robust
  // at this size (typical result ~0.9).
  graph::LfrParams params;
  params.average_degree = 12.0;
  params.communities = 32;
  const auto g = graph::lfr_like(2048, params, 53);
  const auto split = graph::split_for_link_prediction(g, {.seed = 3});

  api::Options options;
  options.backend = "device";
  options.device.memory_bytes = 64u << 20;
  options.device.workers = 2;
  options.train().dim = 32;
  options.gosh.total_epochs = 300;
  auto result = api::embed(split.train, options);
  ASSERT_TRUE(result.ok()) << result.status().to_string();

  const auto report =
      evaluate_link_prediction(result.value().embedding, split);
  EXPECT_GT(report.auc_roc, 0.8);
  EXPECT_GT(report.train_samples, 0u);
  EXPECT_GT(report.test_samples, 0u);
}

TEST(LinkPrediction, RandomEmbeddingIsChance) {
  const auto g = graph::rmat(10, 6000, 54);
  const auto split = graph::split_for_link_prediction(g, {.seed = 4});
  embedding::EmbeddingMatrix random_matrix(split.train.num_vertices(), 16);
  random_matrix.initialize_random(5);
  const auto report = evaluate_link_prediction(random_matrix, split);
  EXPECT_NEAR(report.auc_roc, 0.5, 0.1);
}

TEST(LinkPrediction, MaxTrainEdgesCapsWork) {
  const auto g = graph::rmat(10, 6000, 55);
  const auto split = graph::split_for_link_prediction(g, {.seed = 5});
  embedding::EmbeddingMatrix m(split.train.num_vertices(), 8);
  m.initialize_random(6);
  LinkPredictionOptions options;
  options.max_train_edges = 100;
  const auto report = evaluate_link_prediction(m, split, options);
  EXPECT_EQ(report.train_samples, 200u);  // positives + negatives
}

TEST(NodeClassification, SeparableCommunities) {
  // Two cliques, labels = clique id; embeddings trained by GOSH should
  // classify almost perfectly.
  const vid_t clique = 16;
  std::vector<graph::Edge> edges;
  for (vid_t u = 0; u < clique; ++u) {
    for (vid_t v = u + 1; v < clique; ++v) {
      edges.emplace_back(u, v);
      edges.emplace_back(clique + u, clique + v);
    }
  }
  edges.emplace_back(0, clique);
  const auto g = graph::build_csr(2 * clique, std::move(edges));

  api::Options options;
  options.backend = "device";
  options.device.memory_bytes = 16u << 20;
  options.device.workers = 2;
  options.train().dim = 16;
  options.train().learning_rate = 0.05f;
  options.gosh.total_epochs = 300;
  options.gosh.coarsening.threshold = 4;
  auto result = api::embed(g, options);
  ASSERT_TRUE(result.ok()) << result.status().to_string();

  std::vector<unsigned> labels(2 * clique);
  for (vid_t v = 0; v < 2 * clique; ++v) labels[v] = v < clique ? 0 : 1;
  const auto report =
      evaluate_node_classification(result.value().embedding, labels);
  EXPECT_EQ(report.classes, 2u);
  EXPECT_GT(report.accuracy, 0.8);
}

}  // namespace
}  // namespace gosh::eval
