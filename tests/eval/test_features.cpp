// Negative-edge sampling and feature construction details.
#include <gtest/gtest.h>

#include <set>

#include "gosh/eval/features.hpp"
#include "gosh/graph/generators.hpp"
#include "gosh/graph/ops.hpp"

namespace gosh::eval {
namespace {

TEST(NegativeSampling, DeterministicInSeed) {
  const auto g = graph::erdos_renyi(100, 500, 1);
  EXPECT_EQ(sample_negative_edges(g, 200, 7),
            sample_negative_edges(g, 200, 7));
  EXPECT_NE(sample_negative_edges(g, 200, 7),
            sample_negative_edges(g, 200, 8));
}

TEST(NegativeSampling, ExhaustsSparseComplement) {
  // Nearly-complete graph: only a handful of non-edges exist; sampling a
  // few of them must terminate and produce valid non-edges.
  auto g = graph::complete_graph(12);
  // Remove 3 edges by rebuilding without them.
  auto edges = graph::undirected_edges(g);
  edges.resize(edges.size() - 3);
  g = graph::build_csr(12, std::move(edges));
  const auto negatives = sample_negative_edges(g, 3, 5);
  EXPECT_EQ(negatives.size(), 3u);
  for (const auto& [u, v] : negatives) {
    EXPECT_FALSE(graph::has_arc(g, u, v));
  }
}

TEST(NegativeSampling, ZeroCountIsEmpty) {
  const auto g = graph::cycle_graph(10);
  EXPECT_TRUE(sample_negative_edges(g, 0, 1).empty());
}

TEST(Features, LabelLayoutPositivesFirst) {
  embedding::EmbeddingMatrix m(4, 2);
  m.initialize_random(1);
  const auto set =
      build_edge_features(m, {{0, 1}, {1, 2}}, {{2, 3}});
  ASSERT_EQ(set.size(), 3u);
  EXPECT_EQ(set.labels[0], 1);
  EXPECT_EQ(set.labels[1], 1);
  EXPECT_EQ(set.labels[2], 0);
}

TEST(Features, EmptyInputsGiveEmptySet) {
  embedding::EmbeddingMatrix m(4, 2);
  const auto set = build_edge_features(m, {}, {});
  EXPECT_EQ(set.size(), 0u);
}

TEST(Features, RowPointersIndexCorrectly) {
  embedding::EmbeddingMatrix m(3, 3);
  for (vid_t v = 0; v < 3; ++v) {
    for (unsigned j = 0; j < 3; ++j) {
      m.row(v)[j] = static_cast<float>(v * 10 + j);
    }
  }
  const auto set = build_edge_features(m, {{0, 1}}, {{1, 2}});
  // row 0: m[0] * m[1] = [0*10, 1*11, 2*12]
  EXPECT_FLOAT_EQ(set.row(0)[0], 0.0f);
  EXPECT_FLOAT_EQ(set.row(0)[1], 11.0f);
  EXPECT_FLOAT_EQ(set.row(0)[2], 24.0f);
  // row 1: m[1] * m[2] = [10*20, 11*21, 12*22]
  EXPECT_FLOAT_EQ(set.row(1)[0], 200.0f);
  EXPECT_FLOAT_EQ(set.row(1)[1], 231.0f);
  EXPECT_FLOAT_EQ(set.row(1)[2], 264.0f);
}

}  // namespace
}  // namespace gosh::eval
