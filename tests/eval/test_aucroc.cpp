// AUCROC correctness against hand-computable cases.
#include <gtest/gtest.h>

#include <vector>

#include "gosh/common/rng.hpp"
#include "gosh/eval/aucroc.hpp"

namespace gosh::eval {
namespace {

TEST(AucRoc, PerfectSeparationIsOne) {
  const std::vector<float> scores = {0.1f, 0.2f, 0.8f, 0.9f};
  const std::vector<uint8_t> labels = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(auc_roc(scores, labels), 1.0);
}

TEST(AucRoc, PerfectInversionIsZero) {
  const std::vector<float> scores = {0.9f, 0.8f, 0.2f, 0.1f};
  const std::vector<uint8_t> labels = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(auc_roc(scores, labels), 0.0);
}

TEST(AucRoc, AllTiedIsHalf) {
  const std::vector<float> scores = {0.5f, 0.5f, 0.5f, 0.5f};
  const std::vector<uint8_t> labels = {0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(auc_roc(scores, labels), 0.5);
}

TEST(AucRoc, HandComputedMixedCase) {
  // positives: 0.4, 0.8; negatives: 0.3, 0.6.
  // Pairs: (0.4>0.3)=1, (0.4<0.6)=0, (0.8>0.3)=1, (0.8>0.6)=1 => 3/4.
  const std::vector<float> scores = {0.4f, 0.8f, 0.3f, 0.6f};
  const std::vector<uint8_t> labels = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(auc_roc(scores, labels), 0.75);
}

TEST(AucRoc, PartialTieCountsHalf) {
  // positive at 0.5 ties one negative: (tie=0.5 + win=1)/2 ... compute:
  // positives: {0.5}; negatives: {0.5, 0.2} => (0.5 + 1)/2 = 0.75.
  const std::vector<float> scores = {0.5f, 0.5f, 0.2f};
  const std::vector<uint8_t> labels = {1, 0, 0};
  EXPECT_DOUBLE_EQ(auc_roc(scores, labels), 0.75);
}

TEST(AucRoc, RandomScoresNearHalf) {
  Rng rng(12);
  std::vector<float> scores(20000);
  std::vector<uint8_t> labels(20000);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    scores[i] = rng.next_float();
    labels[i] = static_cast<uint8_t>(rng.next_bounded(2));
  }
  EXPECT_NEAR(auc_roc(scores, labels), 0.5, 0.02);
}

TEST(AucRoc, SingleClassThrows) {
  const std::vector<float> scores = {0.1f, 0.2f};
  const std::vector<uint8_t> ones = {1, 1};
  const std::vector<uint8_t> zeros = {0, 0};
  EXPECT_THROW(auc_roc(scores, ones), std::invalid_argument);
  EXPECT_THROW(auc_roc(scores, zeros), std::invalid_argument);
}

TEST(AucRoc, InvariantToMonotoneTransform) {
  Rng rng(13);
  std::vector<float> scores(1000);
  std::vector<uint8_t> labels(1000);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    labels[i] = static_cast<uint8_t>(rng.next_bounded(2));
    scores[i] = rng.next_float() + 0.3f * labels[i];
  }
  const double base = auc_roc(scores, labels);
  for (auto& s : scores) s = s * 10.0f - 3.0f;  // affine transform
  EXPECT_NEAR(auc_roc(scores, labels), base, 1e-12);
}

}  // namespace
}  // namespace gosh::eval
