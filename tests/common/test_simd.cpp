// gosh::simd — SIMD-vs-scalar parity across every dim 1..130 (odd tails
// and non-multiples of every vector width included), block-kernel
// consistency with the single-pair kernels, dispatch resolution, and the
// force/restore switch.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gosh/common/rng.hpp"
#include "gosh/common/sigmoid.hpp"
#include "gosh/common/simd.hpp"
#include "gosh/embedding/update.hpp"

namespace gosh::simd {
namespace {

constexpr unsigned kMaxDim = 130;

// |simd - scalar| must stay within 1e-5 relative to the magnitude of the
// scalar reference: the ISAs accumulate in different orders (and contract
// with FMA), so bit equality across tables is not expected — closeness is.
void expect_close(float got, float ref, const char* what, unsigned d,
                  std::string_view isa) {
  EXPECT_NEAR(got, ref, 1e-5f * (1.0f + std::fabs(ref)))
      << what << " d=" << d << " isa=" << isa;
}

std::vector<Isa> available_isas() {
  std::vector<Isa> isas;
  for (const Isa isa :
       {Isa::kScalar, Isa::kAvx2, Isa::kAvx512, Isa::kNeon}) {
    if (kernel_table(isa) != nullptr) isas.push_back(isa);
  }
  return isas;
}

std::vector<float> random_vector(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (float& x : v) x = rng.next_float() - 0.5f;
  return v;
}

TEST(Simd, ScalarTableIsAlwaysAvailable) {
  ASSERT_NE(kernel_table(Isa::kScalar), nullptr);
  EXPECT_NE(kernel_table(best_supported_isa()), nullptr);
  // The active table is one of the available ones.
  EXPECT_NE(kernel_table(active_isa()), nullptr);
}

TEST(Simd, NamesRoundTrip) {
  for (const Isa isa :
       {Isa::kScalar, Isa::kAvx2, Isa::kAvx512, Isa::kNeon}) {
    const auto parsed = parse_isa(isa_name(isa));
    ASSERT_TRUE(parsed.has_value()) << isa_name(isa);
    EXPECT_EQ(*parsed, isa);
  }
  EXPECT_FALSE(parse_isa("avx1024").has_value());
  EXPECT_FALSE(parse_isa("").has_value());
}

TEST(Simd, DotAndL2AndNormMatchScalarAcrossAllDims) {
  const KernelTable& scalar = *kernel_table(Isa::kScalar);
  Rng rng(11);
  for (const Isa isa : available_isas()) {
    const KernelTable& table = *kernel_table(isa);
    for (unsigned d = 1; d <= kMaxDim; ++d) {
      const auto a = random_vector(d, rng);
      const auto b = random_vector(d, rng);
      expect_close(table.dot(a.data(), b.data(), d),
                   scalar.dot(a.data(), b.data(), d), "dot", d,
                   isa_name(isa));
      expect_close(table.l2_squared(a.data(), b.data(), d),
                   scalar.l2_squared(a.data(), b.data(), d), "l2_squared", d,
                   isa_name(isa));
      expect_close(table.inverse_norm(a.data(), d),
                   scalar.inverse_norm(a.data(), d), "inverse_norm", d,
                   isa_name(isa));
    }
    // Zero vector: inverse_norm degrades to 0, never NaN/inf.
    const std::vector<float> zero(kMaxDim, 0.0f);
    for (const unsigned d : {1u, 7u, 32u, kMaxDim}) {
      EXPECT_EQ(table.inverse_norm(zero.data(), d), 0.0f) << isa_name(isa);
    }
  }
}

TEST(Simd, FusedPairUpdateMatchesScalarAcrossAllDims) {
  const KernelTable& scalar = *kernel_table(Isa::kScalar);
  Rng rng(13);
  for (const Isa isa : available_isas()) {
    const KernelTable& table = *kernel_table(isa);
    for (unsigned d = 1; d <= kMaxDim; ++d) {
      const auto source = random_vector(d, rng);
      const auto sample = random_vector(d, rng);
      const float score = 0.07f;
      for (const bool simultaneous : {true, false}) {
        auto src_simd = source, smp_simd = sample;
        auto src_ref = source, smp_ref = sample;
        if (simultaneous) {
          table.pair_update_simultaneous(src_simd.data(), smp_simd.data(), d,
                                         score);
          scalar.pair_update_simultaneous(src_ref.data(), smp_ref.data(), d,
                                          score);
        } else {
          table.pair_update_sequential(src_simd.data(), smp_simd.data(), d,
                                       score);
          scalar.pair_update_sequential(src_ref.data(), smp_ref.data(), d,
                                        score);
        }
        for (unsigned j = 0; j < d; ++j) {
          expect_close(src_simd[j], src_ref[j], "pair_update source", d,
                       isa_name(isa));
          expect_close(smp_simd[j], smp_ref[j], "pair_update sample", d,
                       isa_name(isa));
        }
      }
    }
  }
}

// Full Algorithm 1 through the public entry point: SIMD dot feeding the
// sigmoid feeding the SIMD dual-axpy, vs the same arithmetic done by hand
// on the scalar table.
TEST(Simd, UpdateEmbeddingMatchesScalarReference) {
  const KernelTable& scalar = *kernel_table(Isa::kScalar);
  ScopedIsa guard;
  Rng rng(17);
  for (const Isa isa : available_isas()) {
    ASSERT_TRUE(force_isa(isa));
    for (const unsigned d : {1u, 3u, 16u, 33u, 128u, kMaxDim}) {
      const auto source = random_vector(d, rng);
      const auto sample = random_vector(d, rng);
      auto src_simd = source, smp_simd = sample;
      embedding::update_embedding<embedding::UpdateRule::kSimultaneous>(
          src_simd.data(), smp_simd.data(), d, 1.0f, 0.05f,
          embedding::ExactSigmoid{});

      auto src_ref = source, smp_ref = sample;
      const float score =
          (1.0f - sigmoid_exact(scalar.dot(src_ref.data(), smp_ref.data(), d))) *
          0.05f;
      scalar.pair_update_simultaneous(src_ref.data(), smp_ref.data(), d, score);
      for (unsigned j = 0; j < d; ++j) {
        expect_close(src_simd[j], src_ref[j], "update_embedding source", d,
                     isa_name(isa));
        expect_close(smp_simd[j], smp_ref[j], "update_embedding sample", d,
                     isa_name(isa));
      }
    }
  }
}

// dot_block/l2_block must agree BITWISE with their single-pair kernels at
// the same ISA (the determinism contract of the exact scan), for every
// block size around the register-tile width and every awkward dim.
TEST(Simd, BlockKernelsAgreeBitwiseWithSinglePairKernels) {
  Rng rng(19);
  for (const Isa isa : available_isas()) {
    const KernelTable& table = *kernel_table(isa);
    for (const unsigned d : {1u, 5u, 8u, 17u, 64u, 130u}) {
      for (const std::size_t count : {1u, 2u, 3u, 4u, 5u, 9u, 16u}) {
        const auto queries = random_vector(count * d, rng);
        const auto row = random_vector(d, rng);
        std::vector<float> dots(count), l2s(count);
        table.dot_block(queries.data(), count, row.data(), d, dots.data());
        table.l2_block(queries.data(), count, row.data(), d, l2s.data());
        for (std::size_t i = 0; i < count; ++i) {
          EXPECT_EQ(dots[i], table.dot(queries.data() + i * d, row.data(), d))
              << "dot_block " << isa_name(isa) << " d=" << d
              << " count=" << count << " i=" << i;
          EXPECT_EQ(l2s[i],
                    table.l2_squared(queries.data() + i * d, row.data(), d))
              << "l2_block " << isa_name(isa) << " d=" << d
              << " count=" << count << " i=" << i;
        }
      }
    }
  }
}

TEST(Simd, BlockKernelsMatchScalarAcrossAllDims) {
  const KernelTable& scalar = *kernel_table(Isa::kScalar);
  Rng rng(23);
  constexpr std::size_t kCount = 6;
  for (const Isa isa : available_isas()) {
    const KernelTable& table = *kernel_table(isa);
    for (unsigned d = 1; d <= kMaxDim; ++d) {
      const auto queries = random_vector(kCount * d, rng);
      const auto row = random_vector(d, rng);
      std::vector<float> got(kCount), ref(kCount);
      table.dot_block(queries.data(), kCount, row.data(), d, got.data());
      scalar.dot_block(queries.data(), kCount, row.data(), d, ref.data());
      for (std::size_t i = 0; i < kCount; ++i) {
        expect_close(got[i], ref[i], "dot_block", d, isa_name(isa));
      }
      table.l2_block(queries.data(), kCount, row.data(), d, got.data());
      scalar.l2_block(queries.data(), kCount, row.data(), d, ref.data());
      for (std::size_t i = 0; i < kCount; ++i) {
        expect_close(got[i], ref[i], "l2_block", d, isa_name(isa));
      }
    }
  }
}

// Aliased rows (source == sample, the HOGWILD self-negative case) must
// match the scalar loop's read-before-write semantics.
TEST(Simd, PairUpdateToleratesFullAliasing) {
  const KernelTable& scalar = *kernel_table(Isa::kScalar);
  Rng rng(29);
  for (const Isa isa : available_isas()) {
    const KernelTable& table = *kernel_table(isa);
    for (const unsigned d : {3u, 8u, 29u, 128u}) {
      const auto original = random_vector(d, rng);
      auto row_simd = original;
      auto row_ref = original;
      table.pair_update_simultaneous(row_simd.data(), row_simd.data(), d,
                                     0.03f);
      scalar.pair_update_simultaneous(row_ref.data(), row_ref.data(), d,
                                      0.03f);
      for (unsigned j = 0; j < d; ++j) {
        expect_close(row_simd[j], row_ref[j], "aliased pair_update", d,
                     isa_name(isa));
      }
    }
  }
}

TEST(Simd, ForceIsaSwitchesAndRestores) {
  ScopedIsa guard;
  for (const Isa isa : available_isas()) {
    EXPECT_TRUE(force_isa(isa));
    EXPECT_EQ(active_isa(), isa);
    // kernels() serves the forced table.
    EXPECT_EQ(&kernels(), kernel_table(isa));
  }
#if !defined(__aarch64__)
  EXPECT_FALSE(force_isa(Isa::kNeon));
#else
  EXPECT_FALSE(force_isa(Isa::kAvx2));
#endif
}

}  // namespace
}  // namespace gosh::simd
