// RNG determinism, stream independence and distribution sanity.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "gosh/common/rng.hpp"

namespace gosh {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 5);
}

TEST(Rng, SplitIsDeterministic) {
  Rng parent(7);
  Rng child1 = parent.split(42);
  Rng child2 = parent.split(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child1.next(), child2.next());
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(7);
  Rng child1 = parent.split(1);
  Rng child2 = parent.split(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += child1.next() == child2.next();
  EXPECT_LT(equal, 5);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(99);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_bounded(bound), bound);
  }
}

TEST(Rng, BoundedOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_bounded(1), 0u);
}

TEST(Rng, FloatInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const float x = rng.next_float();
    EXPECT_GE(x, 0.0f);
    EXPECT_LT(x, 1.0f);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, BoundedIsRoughlyUniform) {
  // Chi-square-style loose check over 16 buckets.
  Rng rng(11);
  constexpr int kBuckets = 16;
  constexpr int kDraws = 160000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) counts[rng.next_bounded(kBuckets)]++;
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int count : counts) {
    EXPECT_NEAR(count, expected, expected * 0.1);
  }
}

TEST(Rng, HashCombineSeparatesStreams) {
  std::set<std::uint64_t> values;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    for (std::uint64_t stream = 0; stream < 50; ++stream) {
      values.insert(hash_combine(seed, stream));
    }
  }
  EXPECT_EQ(values.size(), 50u * 50u);  // no collisions on a small grid
}

TEST(Rng, SplitMixAdvancesState) {
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  const std::uint64_t second = splitmix64(state);
  EXPECT_NE(first, second);
  EXPECT_NE(state, 0u);
}

class RngVertexBoundTest : public ::testing::TestWithParam<vid_t> {};

TEST_P(RngVertexBoundTest, VertexSamplesCoverRange) {
  const vid_t n = GetParam();
  Rng rng(n);
  std::set<vid_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const vid_t v = rng.next_vertex(n);
    ASSERT_LT(v, n);
    seen.insert(v);
  }
  // All values should appear for small n.
  if (n <= 8) {
    EXPECT_EQ(seen.size(), n);
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngVertexBoundTest,
                         ::testing::Values(1, 2, 3, 8, 1000, 1 << 20));

}  // namespace
}  // namespace gosh
