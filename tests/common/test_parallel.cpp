// Thread pool and parallel_for coverage / scheduling invariants.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "gosh/common/parallel_for.hpp"
#include "gosh/common/thread_pool.hpp"

namespace gosh {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { counter++; }));
  }
  for (auto& f : futures) f.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit_detached([&counter] { counter++; });
    }
  }  // join
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 100000;
  std::vector<std::atomic<int>> visits(kN);
  parallel_for(kN, [&visits](std::size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(0, [&called](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleThreadRunsInline) {
  ParallelForOptions options;
  options.threads = 1;
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ids(16);
  parallel_for(
      16, [&ids](std::size_t i) { ids[i] = std::this_thread::get_id(); },
      options);
  for (const auto& id : ids) EXPECT_EQ(id, caller);
}

class ParallelForGrainTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelForGrainTest, SumMatchesUnderAnyGrain) {
  ParallelForOptions options;
  options.grain = GetParam();
  constexpr std::size_t kN = 12345;
  std::atomic<std::uint64_t> sum{0};
  parallel_for(
      kN,
      [&sum](std::size_t i) {
        sum.fetch_add(i, std::memory_order_relaxed);
      },
      options);
  EXPECT_EQ(sum.load(), kN * (kN - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Grains, ParallelForGrainTest,
                         ::testing::Values(1, 2, 7, 64, 1024, 1 << 20));

TEST(ParallelFor, StaticPartitionCoversRange) {
  ParallelForOptions options;
  options.static_partition = true;
  constexpr std::size_t kN = 9999;
  std::vector<std::atomic<int>> visits(kN);
  parallel_for(
      kN,
      [&visits](std::size_t i) {
        visits[i].fetch_add(1, std::memory_order_relaxed);
      },
      options);
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(visits[i].load(), 1);
}

TEST(ParallelForWorker, WorkerIdsAreInRange) {
  const unsigned threads = effective_threads({});
  std::atomic<bool> bad{false};
  parallel_for_worker(
      10000,
      [&bad, threads](unsigned worker, std::size_t, std::size_t) {
        if (worker >= threads) bad.store(true);
      },
      {});
  EXPECT_FALSE(bad.load());
}

TEST(ParallelForWorker, DisjointRangesCoverAll) {
  constexpr std::size_t kN = 50000;
  std::vector<std::atomic<int>> visits(kN);
  parallel_for_worker(
      kN,
      [&visits](unsigned, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          visits[i].fetch_add(1, std::memory_order_relaxed);
        }
      },
      {});
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(visits[i].load(), 1);
}

}  // namespace
}  // namespace gosh
