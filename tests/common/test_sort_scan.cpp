// Counting sort and prefix-sum invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "gosh/common/counting_sort.hpp"
#include "gosh/common/prefix_sum.hpp"
#include "gosh/common/rng.hpp"

namespace gosh {
namespace {

TEST(CountingSort, DescendingOrder) {
  std::vector<unsigned> keys = {3, 1, 4, 1, 5, 9, 2, 6};
  const auto order = counting_sort_descending(
      std::span<const unsigned>(keys), 9);
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(keys[order[i - 1]], keys[order[i]]);
  }
}

TEST(CountingSort, StableOnTies) {
  std::vector<unsigned> keys = {5, 5, 5, 2, 2, 7};
  const auto order = counting_sort_descending(
      std::span<const unsigned>(keys), 7);
  // Expected: 7 first (index 5), then the 5s in original order, then 2s.
  EXPECT_EQ(order[0], 5u);
  EXPECT_EQ(order[1], 0u);
  EXPECT_EQ(order[2], 1u);
  EXPECT_EQ(order[3], 2u);
  EXPECT_EQ(order[4], 3u);
  EXPECT_EQ(order[5], 4u);
}

TEST(CountingSort, IsAPermutation) {
  Rng rng(1);
  std::vector<unsigned> keys(1000);
  for (auto& k : keys) k = static_cast<unsigned>(rng.next_bounded(50));
  auto order = counting_sort_descending(std::span<const unsigned>(keys), 50);
  std::sort(order.begin(), order.end());
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(CountingSort, EmptyInput) {
  std::vector<unsigned> keys;
  EXPECT_TRUE(
      counting_sort_descending(std::span<const unsigned>(keys), 0).empty());
}

TEST(CountingSort, AllEqualKeys) {
  std::vector<unsigned> keys(100, 7);
  const auto order =
      counting_sort_descending(std::span<const unsigned>(keys), 7);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);  // stability
}

TEST(PrefixSum, ExclusiveBasics) {
  std::vector<int> values = {3, 1, 4};
  const int total = exclusive_prefix_sum(std::span<int>(values));
  EXPECT_EQ(total, 8);
  EXPECT_EQ(values, (std::vector<int>{0, 3, 4}));
}

TEST(PrefixSum, EmptyReturnsZero) {
  std::vector<int> values;
  EXPECT_EQ(exclusive_prefix_sum(std::span<int>(values)), 0);
}

TEST(PrefixSum, MatchesManualAccumulation) {
  Rng rng(2);
  std::vector<std::uint64_t> values(500);
  for (auto& v : values) v = rng.next_bounded(1000);
  std::vector<std::uint64_t> expected(values.size());
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    expected[i] = running;
    running += values[i];
  }
  const auto total = exclusive_prefix_sum(std::span<std::uint64_t>(values));
  EXPECT_EQ(total, running);
  EXPECT_EQ(values, expected);
}

}  // namespace
}  // namespace gosh
