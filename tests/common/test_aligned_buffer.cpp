// AlignedBuffer: alignment, initialization, move-only ownership.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "gosh/common/aligned_buffer.hpp"

namespace gosh {
namespace {

TEST(AlignedBuffer, CacheLineAligned) {
  AlignedBuffer<float> buffer(1000);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buffer.data()) % kCacheLine, 0u);
}

TEST(AlignedBuffer, ValueInitialized) {
  AlignedBuffer<double> buffer(257);
  for (double x : buffer) EXPECT_EQ(x, 0.0);
}

TEST(AlignedBuffer, EmptyIsNull) {
  AlignedBuffer<int> buffer;
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.data(), nullptr);
  AlignedBuffer<int> zero(0);
  EXPECT_TRUE(zero.empty());
}

TEST(AlignedBuffer, MoveConstructionTransfers) {
  AlignedBuffer<int> source(16);
  source[3] = 42;
  int* raw = source.data();
  AlignedBuffer<int> target(std::move(source));
  EXPECT_EQ(target.data(), raw);
  EXPECT_EQ(target[3], 42);
  EXPECT_TRUE(source.empty());
}

TEST(AlignedBuffer, MoveAssignmentReleasesOld) {
  AlignedBuffer<int> a(8), b(16);
  b[0] = 7;
  a = std::move(b);
  EXPECT_EQ(a.size(), 16u);
  EXPECT_EQ(a[0], 7);
  EXPECT_TRUE(b.empty());
}

TEST(AlignedBuffer, SelfMoveAssignmentIsSafe) {
  AlignedBuffer<int> a(8);
  a[0] = 5;
  AlignedBuffer<int>& alias = a;
  a = std::move(alias);
  EXPECT_EQ(a.size(), 8u);
  EXPECT_EQ(a[0], 5);
}

TEST(AlignedBuffer, IterationCoversAllElements) {
  AlignedBuffer<int> buffer(100);
  int i = 0;
  for (int& x : buffer) x = i++;
  EXPECT_EQ(buffer[99], 99);
  EXPECT_EQ(buffer.end() - buffer.begin(), 100);
}

}  // namespace
}  // namespace gosh
