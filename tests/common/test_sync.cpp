// gosh::common sync wrappers — functional coverage for the annotated
// Mutex / MutexLock / UniqueLock / CondVar layer. The compile-time story
// (guarded fields, acquire/release shapes) is proven by the Clang
// -Wthread-safety CI leg; these tests pin the runtime semantics the
// wrappers forward to the std primitives: mutual exclusion, try_lock,
// mid-scope relock, CV handoff and timeout. The suite runs under the TSan
// CI filter, so a wrapper that stopped actually locking would be caught
// twice — once by the counter here, once as a data race.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "gosh/common/sync.hpp"

namespace gosh::common {
namespace {

TEST(Sync, MutexLockProvidesMutualExclusion) {
  struct Shared {
    Mutex mutex;
    long counter GOSH_GUARDED_BY(mutex) = 0;
  } shared;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&shared] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(shared.mutex);
        ++shared.counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  MutexLock lock(shared.mutex);
  EXPECT_EQ(shared.counter, static_cast<long>(kThreads) * kIncrements);
}

TEST(Sync, TryLockFailsWhileHeldAndSucceedsWhenFree) {
  Mutex mutex;
  {
    MutexLock lock(mutex);
    std::thread contender([&mutex] {
      // Must not block: the main thread holds the mutex.
      EXPECT_FALSE(mutex.try_lock());
    });
    contender.join();
  }
  ASSERT_TRUE(mutex.try_lock());
  mutex.unlock();
}

TEST(Sync, UniqueLockRelocksMidScope) {
  Mutex mutex;
  UniqueLock lock(mutex);
  EXPECT_TRUE(lock.owns_lock());
  lock.unlock();
  EXPECT_FALSE(lock.owns_lock());
  // While dropped, another thread can take and release the mutex.
  std::thread other([&mutex] { MutexLock inner(mutex); });
  other.join();
  lock.lock();
  EXPECT_TRUE(lock.owns_lock());
}

TEST(Sync, CondVarHandsOffValuesInOrder) {
  struct Channel {
    Mutex mutex;
    CondVar cv;
    std::vector<int> queue GOSH_GUARDED_BY(mutex);
    bool done GOSH_GUARDED_BY(mutex) = false;
  } channel;
  constexpr int kValues = 1000;

  std::thread consumer([&channel] {
    std::vector<int> received;
    for (;;) {
      UniqueLock lock(channel.mutex);
      while (channel.queue.empty() && !channel.done) channel.cv.wait(lock);
      if (!channel.queue.empty()) {
        received.insert(received.end(), channel.queue.begin(),
                        channel.queue.end());
        channel.queue.clear();
      } else if (channel.done) {
        break;
      }
    }
    ASSERT_EQ(received.size(), static_cast<std::size_t>(kValues));
    for (int i = 0; i < kValues; ++i) EXPECT_EQ(received[i], i);
  });

  for (int i = 0; i < kValues; ++i) {
    MutexLock lock(channel.mutex);
    channel.queue.push_back(i);
    channel.cv.notify_one();
  }
  {
    MutexLock lock(channel.mutex);
    channel.done = true;
    channel.cv.notify_all();
  }
  consumer.join();
}

TEST(Sync, WaitForTimesOutWhenNobodyNotifies) {
  Mutex mutex;
  CondVar cv;
  UniqueLock lock(mutex);
  const auto verdict = cv.wait_for(lock, std::chrono::milliseconds(5));
  EXPECT_EQ(verdict, std::cv_status::timeout);
  EXPECT_TRUE(lock.owns_lock());  // re-taken before returning, as std does
}

TEST(Sync, WaitForWakesOnNotify) {
  struct Shared {
    Mutex mutex;
    CondVar cv;
    bool ready GOSH_GUARDED_BY(mutex) = false;
  } shared;
  std::thread notifier([&shared] {
    MutexLock lock(shared.mutex);
    shared.ready = true;
    shared.cv.notify_one();
  });
  UniqueLock lock(shared.mutex);
  // Bounded wait in a predicate loop: immune to both lost and spurious
  // wakeups; the deadline only exists so a broken notify fails the test
  // instead of hanging it.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(30);
  bool timed_out = false;
  while (!shared.ready && !timed_out) {
    timed_out = shared.cv.wait_for(lock, deadline -
                                             std::chrono::steady_clock::now())
                    == std::cv_status::timeout &&
                std::chrono::steady_clock::now() >= deadline;
  }
  EXPECT_TRUE(shared.ready);
  lock.unlock();
  notifier.join();
}

}  // namespace
}  // namespace gosh::common
