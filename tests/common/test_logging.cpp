// Log level filtering.
#include <gtest/gtest.h>

#include "gosh/common/logging.hpp"

namespace gosh {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::Warn); }  // default
};

TEST_F(LoggingTest, LevelRoundTrips) {
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Off);
  EXPECT_EQ(log_level(), LogLevel::Off);
}

TEST_F(LoggingTest, EmitBelowThresholdIsSafeNoop) {
  set_log_level(LogLevel::Error);
  // Nothing to assert on stderr without capturing it; the contract under
  // test is that filtered calls are cheap and safe.
  log_debug("dropped");
  log_info("dropped");
  log_warn("dropped");
  SUCCEED();
}

TEST_F(LoggingTest, OffSilencesEverything) {
  set_log_level(LogLevel::Off);
  log_error("dropped too");
  SUCCEED();
}

}  // namespace
}  // namespace gosh
