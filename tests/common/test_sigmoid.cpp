// Sigmoid table accuracy and boundary behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "gosh/common/sigmoid.hpp"

namespace gosh {
namespace {

TEST(Sigmoid, ExactMatchesClosedForm) {
  EXPECT_FLOAT_EQ(sigmoid_exact(0.0f), 0.5f);
  EXPECT_NEAR(sigmoid_exact(1.0f), 1.0f / (1.0f + std::exp(-1.0f)), 1e-7f);
  EXPECT_NEAR(sigmoid_exact(-1.0f), 1.0f / (1.0f + std::exp(1.0f)), 1e-7f);
}

TEST(SigmoidTable, AccurateWithinBound) {
  SigmoidTable table(1024);
  for (float x = -kSigmoidBound; x <= kSigmoidBound; x += 0.001f) {
    EXPECT_NEAR(table(x), sigmoid_exact(x), 5e-5f) << "x = " << x;
  }
}

TEST(SigmoidTable, ClampsOutsideBound) {
  SigmoidTable table;
  EXPECT_FLOAT_EQ(table(-100.0f), table(-kSigmoidBound));
  EXPECT_FLOAT_EQ(table(100.0f), table(kSigmoidBound));
  EXPECT_LT(table(-kSigmoidBound), 1e-3f);
  EXPECT_GT(table(kSigmoidBound), 1.0f - 1e-3f);
}

TEST(SigmoidTable, MonotoneNondecreasing) {
  SigmoidTable table(256);
  float previous = table(-kSigmoidBound - 1.0f);
  for (float x = -kSigmoidBound; x <= kSigmoidBound + 1.0f; x += 0.01f) {
    const float current = table(x);
    EXPECT_GE(current, previous - 1e-7f);
    previous = current;
  }
}

TEST(SigmoidTable, SymmetryAroundZero) {
  SigmoidTable table(2048);
  for (float x = 0.0f; x < kSigmoidBound; x += 0.1f) {
    EXPECT_NEAR(table(x) + table(-x), 1.0f, 1e-4f);
  }
}

class SigmoidResolutionTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SigmoidResolutionTest, ErrorShrinksWithResolution) {
  SigmoidTable table(GetParam());
  float max_error = 0.0f;
  for (float x = -kSigmoidBound; x <= kSigmoidBound; x += 0.003f) {
    max_error = std::max(max_error, std::abs(table(x) - sigmoid_exact(x)));
  }
  // Linear interpolation error ~ (range/resolution)^2 / 8 * max|f''|.
  const float step = 2.0f * kSigmoidBound / static_cast<float>(GetParam());
  EXPECT_LT(max_error, step * step * 0.05f + 1e-6f);
}

INSTANTIATE_TEST_SUITE_P(Resolutions, SigmoidResolutionTest,
                         ::testing::Values(128, 512, 1024, 4096));

TEST(SigmoidTable, DefaultTableIsShared) {
  const SigmoidTable& a = default_sigmoid_table();
  const SigmoidTable& b = default_sigmoid_table();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace gosh
