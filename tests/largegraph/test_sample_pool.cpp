// Host-side positive sampling: pool contents and SampleManager pipelining.
#include <gtest/gtest.h>

#include "gosh/graph/generators.hpp"
#include "gosh/graph/ops.hpp"
#include "gosh/largegraph/rotation.hpp"
#include "gosh/largegraph/sample_pool.hpp"

namespace gosh::largegraph {
namespace {

PartitionPlan manual_plan(vid_t n, unsigned parts) {
  PartitionPlan plan;
  plan.part_capacity = (n + parts - 1) / parts;
  for (unsigned p = 0; p <= parts; ++p) {
    plan.offsets.push_back(
        std::min<vid_t>(n, static_cast<vid_t>(p) * plan.part_capacity));
  }
  return plan;
}

TEST(MakePool, SamplesAreNeighborsInPartnerPart) {
  const auto g = graph::rmat(9, 3000, 31);
  const auto plan = manual_plan(g.num_vertices(), 4);
  const unsigned B = 3;
  const auto pool = SampleManager::make_pool(g, plan, 0, 2, 1, B, 1, 7);
  EXPECT_EQ(pool.part_a, 2u);
  EXPECT_EQ(pool.part_b, 1u);
  ASSERT_EQ(pool.a_from_b.size(),
            static_cast<std::size_t>(plan.part_size(2)) * B);
  for (vid_t i = 0; i < plan.part_size(2); ++i) {
    const vid_t v = plan.part_begin(2) + i;
    for (unsigned s = 0; s < B; ++s) {
      const vid_t u = pool.a_from_b[static_cast<std::size_t>(i) * B + s];
      if (u == kInvalidVertex) continue;
      EXPECT_GE(u, plan.part_begin(1));
      EXPECT_LT(u, plan.part_end(1));
      EXPECT_TRUE(graph::has_arc(g, v, u)) << v << " -> " << u;
    }
  }
}

TEST(MakePool, InvalidWhenNoNeighborInPart) {
  // Path graph: vertex 0's only neighbour is 1; pair (part of 0, far part)
  // yields kInvalidVertex for vertex 0.
  const auto g = graph::path_graph(100);
  const auto plan = manual_plan(100, 4);
  const auto pool = SampleManager::make_pool(g, plan, 0, 3, 0, 2, 1, 7);
  // part 3 = vertices 75..99; none is adjacent to part 0 (0..24) except
  // via the chain — no direct edges cross, so ALL entries are invalid.
  for (vid_t id : pool.a_from_b) EXPECT_EQ(id, kInvalidVertex);
}

TEST(MakePool, DiagonalHasOneDirection) {
  const auto g = graph::rmat(8, 1000, 32);
  const auto plan = manual_plan(g.num_vertices(), 3);
  const auto pool = SampleManager::make_pool(g, plan, 0, 1, 1, 2, 1, 7);
  EXPECT_FALSE(pool.a_from_b.empty());
  EXPECT_TRUE(pool.b_from_a.empty());
}

TEST(MakePool, DeterministicInSeed) {
  const auto g = graph::rmat(8, 1000, 33);
  const auto plan = manual_plan(g.num_vertices(), 2);
  const auto a = SampleManager::make_pool(g, plan, 1, 1, 0, 4, 1, 9);
  const auto b = SampleManager::make_pool(g, plan, 1, 1, 0, 4, 1, 9);
  EXPECT_EQ(a.a_from_b, b.a_from_b);
  EXPECT_EQ(a.b_from_a, b.b_from_a);
}

TEST(SampleManager, DeliversAllPoolsInRotationOrder) {
  const auto g = graph::rmat(8, 1000, 34);
  const auto plan = manual_plan(g.num_vertices(), 3);
  const unsigned rotations = 2;
  SampleManager manager(g, plan, 2, rotations, 1, 5, 4);
  const auto expected_pairs = rotation_pairs(3);
  for (unsigned r = 0; r < rotations; ++r) {
    for (const auto& [a, b] : expected_pairs) {
      const auto pool = manager.next_pool();
      ASSERT_NE(pool, nullptr);
      EXPECT_EQ(pool->rotation, r);
      EXPECT_EQ(pool->part_a, a);
      EXPECT_EQ(pool->part_b, b);
    }
  }
  EXPECT_EQ(manager.next_pool(), nullptr);  // exhausted
}

TEST(SampleManager, DestructorSafeWithUnconsumedPools) {
  const auto g = graph::rmat(8, 1000, 35);
  const auto plan = manual_plan(g.num_vertices(), 4);
  {
    SampleManager manager(g, plan, 2, 3, 1, 5, 2);
    // Consume only one pool, then destroy: must not deadlock.
    ASSERT_NE(manager.next_pool(), nullptr);
  }
  SUCCEED();
}

TEST(SampleManager, BoundedQueueBlocksProducer) {
  const auto g = graph::rmat(8, 1000, 36);
  const auto plan = manual_plan(g.num_vertices(), 4);
  SampleManager manager(g, plan, 2, 1, 1, 5, /*queue_capacity=*/1);
  // With capacity 1 the producer can be at most one pool ahead; consuming
  // them all still yields the full ordered sequence.
  std::size_t count = 0;
  while (manager.next_pool() != nullptr) ++count;
  EXPECT_EQ(count, rotation_pairs(4).size());
}

}  // namespace
}  // namespace gosh::largegraph
