// Partition planning against a device budget.
#include <gtest/gtest.h>

#include "gosh/largegraph/partition.hpp"

namespace gosh::largegraph {
namespace {

PartitionRequest request(vid_t n, unsigned dim, std::size_t budget) {
  PartitionRequest r;
  r.num_vertices = n;
  r.dim = dim;
  r.device_budget_bytes = budget;
  return r;
}

TEST(Partition, CoversAllVerticesContiguously) {
  const auto plan = plan_partitions(request(10000, 32, 1 << 20));
  ASSERT_GE(plan.num_parts(), 2u);
  EXPECT_EQ(plan.offsets.front(), 0u);
  EXPECT_EQ(plan.offsets.back(), 10000u);
  for (unsigned p = 0; p < plan.num_parts(); ++p) {
    EXPECT_LE(plan.part_begin(p), plan.part_end(p));
    EXPECT_LE(plan.part_size(p), plan.part_capacity);
  }
}

TEST(Partition, WorkingSetFitsBudget) {
  const auto req = request(100000, 64, 4 << 20);
  const auto plan = plan_partitions(req);
  EXPECT_LE(working_set_bytes(plan, req), req.device_budget_bytes);
}

TEST(Partition, MinimalPartsForBigBudget) {
  // A budget comfortably holding everything still yields K = 2 (the
  // algorithm always partitions in this path).
  const auto plan = plan_partitions(request(1000, 8, 1 << 30));
  EXPECT_EQ(plan.num_parts(), 2u);
}

TEST(Partition, PartOfMapsCorrectly) {
  const auto plan = plan_partitions(request(1000, 128, 64 << 10));
  for (vid_t v = 0; v < 1000; v += 37) {
    const unsigned p = plan.part_of(v);
    EXPECT_GE(v, plan.part_begin(p));
    EXPECT_LT(v, plan.part_end(p));
  }
}

TEST(Partition, ThrowsWhenImpossiblyTight) {
  EXPECT_THROW(plan_partitions(request(1000, 128, 16)),
               std::invalid_argument);
}

TEST(Partition, RejectsEmptyAndBadPgpu) {
  EXPECT_THROW(plan_partitions(request(0, 32, 1 << 20)),
               std::invalid_argument);
  auto r = request(100, 32, 1 << 20);
  r.pgpu = 1;
  EXPECT_THROW(plan_partitions(r), std::invalid_argument);
}

class PartitionBudgetSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PartitionBudgetSweep, TighterBudgetsMeanMoreParts) {
  const auto loose = plan_partitions(request(50000, 32, GetParam() * 4));
  const auto tight = plan_partitions(request(50000, 32, GetParam()));
  EXPECT_GE(tight.num_parts(), loose.num_parts());
  // Both still cover the vertex set.
  EXPECT_EQ(tight.offsets.back(), 50000u);
  EXPECT_EQ(loose.offsets.back(), 50000u);
}

INSTANTIATE_TEST_SUITE_P(Budgets, PartitionBudgetSweep,
                         ::testing::Values(512u << 10, 1u << 20, 4u << 20));

}  // namespace
}  // namespace gosh::largegraph
