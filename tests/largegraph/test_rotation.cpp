// Inside-out rotation order (Section 3.3.1).
#include <gtest/gtest.h>

#include <set>

#include "gosh/largegraph/rotation.hpp"

namespace gosh::largegraph {
namespace {

TEST(Rotation, MatchesPaperRecurrenceForThree) {
  const auto pairs = rotation_pairs(3);
  const std::vector<std::pair<unsigned, unsigned>> expected = {
      {0, 0}, {1, 0}, {1, 1}, {2, 0}, {2, 1}, {2, 2}};
  EXPECT_EQ(pairs, expected);
}

TEST(Rotation, EmptyForZeroParts) {
  EXPECT_TRUE(rotation_pairs(0).empty());
}

TEST(Rotation, SinglePartIsDiagonalOnly) {
  const auto pairs = rotation_pairs(1);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], (std::pair<unsigned, unsigned>{0, 0}));
}

class RotationSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(RotationSweep, CoversEveryUnorderedPairOnce) {
  const unsigned k = GetParam();
  const auto pairs = rotation_pairs(k);
  EXPECT_EQ(pairs.size(), static_cast<std::size_t>(k) * (k + 1) / 2);
  std::set<std::pair<unsigned, unsigned>> seen;
  for (const auto& [a, b] : pairs) {
    EXPECT_LT(a, k);
    EXPECT_LE(b, a);  // first >= second throughout
    EXPECT_TRUE(seen.insert({a, b}).second) << a << "," << b;
  }
}

TEST_P(RotationSweep, RowPartStaysResidentAcrossItsRun) {
  // The order's point: consecutive pairs share the row part a until it
  // completes, minimizing switches.
  const auto pairs = rotation_pairs(GetParam());
  for (std::size_t i = 1; i < pairs.size(); ++i) {
    const auto& [pa, pb] = pairs[i - 1];
    const auto& [ca, cb] = pairs[i];
    if (ca == pa) {
      EXPECT_EQ(cb, pb + 1);  // same row, next column
    } else {
      EXPECT_EQ(ca, pa + 1);  // row finished at its diagonal
      EXPECT_EQ(pb, pa);
      EXPECT_EQ(cb, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PartCounts, RotationSweep,
                         ::testing::Values(1, 2, 3, 4, 7, 16, 33));

}  // namespace
}  // namespace gosh::largegraph
