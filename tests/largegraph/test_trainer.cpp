// Algorithm 5 orchestration: out-of-memory training end to end.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gosh/embedding/update.hpp"
#include "gosh/graph/builder.hpp"
#include "gosh/graph/generators.hpp"
#include "gosh/largegraph/trainer.hpp"

namespace gosh::largegraph {
namespace {

simt::DeviceConfig tiny_device(std::size_t bytes) {
  simt::DeviceConfig config;
  config.memory_bytes = bytes;
  config.workers = 2;
  return config;
}

embedding::TrainConfig train_config(unsigned dim) {
  embedding::TrainConfig config;
  config.dim = dim;
  config.learning_rate = 0.05f;
  return config;
}

TEST(LargeTrainer, PlansMultipleParts) {
  // 4096 vertices x 32 dims x 4B = 512 KiB of matrix; 160 KiB device.
  simt::Device device(tiny_device(160u << 10));
  const auto g = graph::rmat(12, 20000, 41);
  LargeGraphConfig config;
  LargeGraphTrainer trainer(device, g, train_config(32), config);
  EXPECT_GE(trainer.plan().num_parts(), 3u);
}

TEST(LargeTrainer, TrainsAndReportsStats) {
  simt::Device device(tiny_device(160u << 10));
  const auto g = graph::rmat(12, 20000, 42);
  embedding::EmbeddingMatrix m(g.num_vertices(), 32);
  m.initialize_random(1);
  const std::vector<emb_t> before(m.data(), m.data() + m.size());

  LargeGraphConfig config;
  config.sampler_threads = 2;
  LargeGraphTrainer trainer(device, g, train_config(32), config);
  const auto stats = trainer.train(m, 40);

  EXPECT_GT(stats.rotations, 0u);
  const auto pairs = static_cast<std::uint64_t>(stats.num_parts) *
                     (stats.num_parts + 1) / 2;
  EXPECT_EQ(stats.kernels, stats.rotations * pairs);
  EXPECT_EQ(stats.pools_consumed, stats.kernels);
  EXPECT_GT(stats.submatrix_switches, 0u);

  bool changed = false;
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_TRUE(std::isfinite(m.data()[i]));
    changed |= m.data()[i] != before[i];
  }
  EXPECT_TRUE(changed);
}

TEST(LargeTrainer, RotationCountMatchesFormula) {
  simt::Device device(tiny_device(160u << 10));
  const auto g = graph::rmat(12, 20000, 43);
  embedding::EmbeddingMatrix m(g.num_vertices(), 32);
  m.initialize_random(2);
  LargeGraphConfig config;
  config.batch_B = 5;
  LargeGraphTrainer trainer(device, g, train_config(32), config);
  const unsigned epochs = 60;
  const auto stats = trainer.train(m, epochs);
  const unsigned expected = std::max(
      1u, (epochs + config.batch_B * stats.num_parts - 1) /
              (config.batch_B * stats.num_parts));
  EXPECT_EQ(stats.rotations, expected);
}

TEST(LargeTrainer, LearnsCommunityStructureAcrossParts) {
  // Two 32-cliques bridged; partitioned so each clique spans parts.
  const vid_t clique = 32;
  std::vector<graph::Edge> edges;
  for (vid_t u = 0; u < clique; ++u) {
    for (vid_t v = u + 1; v < clique; ++v) {
      edges.emplace_back(u, v);
      edges.emplace_back(clique + u, clique + v);
    }
  }
  edges.emplace_back(0, clique);
  const auto g = graph::build_csr(2 * clique, std::move(edges));

  // Budget forces >= 4 parts of 16 vertices.
  simt::Device device(tiny_device(24u << 10));
  embedding::EmbeddingMatrix m(g.num_vertices(), 16);
  m.initialize_random(3);
  LargeGraphConfig config;
  config.batch_B = 2;
  config.device_budget_bytes = 20u << 10;
  LargeGraphTrainer trainer(device, g, train_config(16), config);
  ASSERT_GE(trainer.plan().num_parts(), 2u);
  trainer.train(m, 600);

  float intra = 0.0f, inter = 0.0f;
  int intra_n = 0, inter_n = 0;
  for (vid_t u = 0; u < 2 * clique; ++u) {
    for (vid_t v = u + 1; v < 2 * clique; ++v) {
      const float d =
          embedding::dot(m.row(u).data(), m.row(v).data(), m.dim());
      if ((u < clique) == (v < clique)) {
        intra += d;
        intra_n++;
      } else {
        inter += d;
        inter_n++;
      }
    }
  }
  EXPECT_GT(intra / intra_n - inter / inter_n, 0.05f);
}

class LargeTrainerPgpuTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(LargeTrainerPgpuTest, WorksAcrossSlotCounts) {
  simt::Device device(tiny_device(256u << 10));
  const auto g = graph::rmat(11, 8000, 44);
  embedding::EmbeddingMatrix m(g.num_vertices(), 32);
  m.initialize_random(4);
  LargeGraphConfig config;
  config.pgpu = GetParam();
  config.device_budget_bytes = 128u << 10;
  LargeGraphTrainer trainer(device, g, train_config(32), config);
  trainer.train(m, 20);
  for (std::size_t i = 0; i < m.size(); ++i) {
    ASSERT_TRUE(std::isfinite(m.data()[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(Slots, LargeTrainerPgpuTest,
                         ::testing::Values(2, 3, 4));

class LargeTrainerBatchTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(LargeTrainerBatchTest, LargerBMeansFewerRotations) {
  simt::Device device(tiny_device(256u << 10));
  const auto g = graph::rmat(11, 8000, 45);
  embedding::EmbeddingMatrix m(g.num_vertices(), 32);
  m.initialize_random(5);
  LargeGraphConfig config;
  config.batch_B = GetParam();
  config.device_budget_bytes = 128u << 10;
  LargeGraphTrainer trainer(device, g, train_config(32), config);
  const auto stats = trainer.train(m, 64);
  // rotations ~ epochs / (B*K): monotone nonincreasing in B given fixed K.
  EXPECT_LE(stats.rotations,
            std::max(1u, 64u / (GetParam() * stats.num_parts) + 1));
}

INSTANTIATE_TEST_SUITE_P(Batches, LargeTrainerBatchTest,
                         ::testing::Values(1, 2, 5, 10));

}  // namespace
}  // namespace gosh::largegraph
