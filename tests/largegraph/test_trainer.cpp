// Algorithm 5 orchestration through the gosh::api facade: out-of-memory
// training end to end, partitioned-path reporting, rotation progress.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gosh/api/api.hpp"

namespace gosh {
namespace {

/// A flat (no-coarsening) partitioned run: backend "largegraph" forces
/// level 0 — the only level — through Algorithm 5, and edge_epochs off
/// makes total_epochs the exact pass count the rotation formula sees.
api::Options partitioned_options(std::size_t device_bytes, unsigned dim,
                                 unsigned passes) {
  api::Options options;
  options.backend = "largegraph";
  options.train().dim = dim;
  options.train().learning_rate = 0.05f;
  options.gosh.enable_coarsening = false;
  options.gosh.edge_epochs = false;
  options.gosh.total_epochs = passes;
  options.device.memory_bytes = device_bytes;
  options.device.workers = 2;
  return options;
}

api::EmbedResult must_embed(const graph::Graph& g,
                            const api::Options& options,
                            api::ProgressObserver* observer = nullptr) {
  auto result = api::embed(g, options, observer);
  EXPECT_TRUE(result.ok()) << result.status().to_string();
  return std::move(result).value();
}

TEST(LargeTrainer, PlansMultipleParts) {
  // 4096 vertices x 32 dims x 4B = 512 KiB of matrix; 160 KiB device.
  const auto g = graph::rmat(12, 20000, 41);
  const auto result =
      must_embed(g, partitioned_options(160u << 10, 32, 4));
  ASSERT_EQ(result.levels.size(), 1u);
  EXPECT_TRUE(result.levels[0].used_large_graph_path);
  EXPECT_GE(result.levels[0].partitions, 3u);
}

TEST(LargeTrainer, TrainsAndReportsStats) {
  const auto g = graph::rmat(12, 20000, 42);
  const auto result =
      must_embed(g, partitioned_options(160u << 10, 32, 40));
  const embedding::LevelReport& level = result.levels.front();

  EXPECT_GT(level.rotations, 0u);
  const auto pairs = static_cast<std::uint64_t>(level.partitions) *
                     (level.partitions + 1) / 2;
  EXPECT_EQ(level.pair_kernels, level.rotations * pairs);
  EXPECT_EQ(level.pools_consumed, level.pair_kernels);
  EXPECT_GT(level.submatrix_switches, 0u);

  EXPECT_EQ(result.embedding.rows(), g.num_vertices());
  for (std::size_t i = 0; i < result.embedding.size(); ++i) {
    EXPECT_TRUE(std::isfinite(result.embedding.data()[i]));
  }
}

TEST(LargeTrainer, RotationCountMatchesFormula) {
  const auto g = graph::rmat(12, 20000, 43);
  api::Options options = partitioned_options(160u << 10, 32, 60);
  options.gosh.large_graph.batch_B = 5;
  const auto result = must_embed(g, options);
  const embedding::LevelReport& level = result.levels.front();
  const unsigned expected = std::max(
      1u, (60 + 5 * level.partitions - 1) / (5 * level.partitions));
  EXPECT_EQ(level.rotations, expected);
}

TEST(LargeTrainer, FiresOneEpochTickPerRotationInOrder) {
  // The acceptance contract of the partitioned path: an observer attached
  // through the facade sees on_epoch once per rotation with
  // total = rotations, plus per-pair detail inside each rotation.
  struct RotationObserver : api::ProgressObserver {
    std::vector<unsigned> ticks;
    std::vector<unsigned> totals;
    std::size_t pair_ticks = 0;
    std::size_t last_num_pairs = 0;
    void on_epoch(std::size_t, unsigned epoch, unsigned total) override {
      ticks.push_back(epoch);
      totals.push_back(total);
    }
    void on_pair(std::size_t, unsigned, std::size_t,
                 std::size_t num_pairs) override {
      ++pair_ticks;
      last_num_pairs = num_pairs;
    }
  };

  const auto g = graph::rmat(12, 20000, 46);
  api::Options options = partitioned_options(160u << 10, 32, 60);
  options.gosh.large_graph.batch_B = 2;
  RotationObserver observer;
  const auto result = must_embed(g, options, &observer);
  const embedding::LevelReport& level = result.levels.front();

  ASSERT_GT(level.rotations, 1u);
  ASSERT_EQ(observer.ticks.size(), level.rotations);
  for (unsigned r = 0; r < level.rotations; ++r) {
    EXPECT_EQ(observer.ticks[r], r);
    EXPECT_EQ(observer.totals[r], level.rotations);
  }
  EXPECT_EQ(observer.pair_ticks, level.pair_kernels);
  EXPECT_EQ(observer.last_num_pairs,
            static_cast<std::size_t>(level.partitions) *
                (level.partitions + 1) / 2);
}

TEST(LargeTrainer, LearnsCommunityStructureAcrossParts) {
  // Two 32-cliques bridged; partitioned so each clique spans parts.
  const vid_t clique = 32;
  std::vector<graph::Edge> edges;
  for (vid_t u = 0; u < clique; ++u) {
    for (vid_t v = u + 1; v < clique; ++v) {
      edges.emplace_back(u, v);
      edges.emplace_back(clique + u, clique + v);
    }
  }
  edges.emplace_back(0, clique);
  const auto g = graph::build_csr(2 * clique, std::move(edges));

  // Budget forces >= 2 parts of 16 vertices.
  api::Options options = partitioned_options(24u << 10, 16, 600);
  options.train().seed = 3;
  options.gosh.large_graph.batch_B = 2;
  options.gosh.large_graph.device_budget_bytes = 20u << 10;
  const auto result = must_embed(g, options);
  ASSERT_GE(result.levels.front().partitions, 2u);
  const embedding::EmbeddingMatrix& m = result.embedding;

  float intra = 0.0f, inter = 0.0f;
  int intra_n = 0, inter_n = 0;
  for (vid_t u = 0; u < 2 * clique; ++u) {
    for (vid_t v = u + 1; v < 2 * clique; ++v) {
      const float d =
          embedding::dot(m.row(u).data(), m.row(v).data(), m.dim());
      if ((u < clique) == (v < clique)) {
        intra += d;
        intra_n++;
      } else {
        inter += d;
        inter_n++;
      }
    }
  }
  EXPECT_GT(intra / intra_n - inter / inter_n, 0.05f);
}

class LargeTrainerPgpuTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(LargeTrainerPgpuTest, WorksAcrossSlotCounts) {
  const auto g = graph::rmat(11, 8000, 44);
  api::Options options = partitioned_options(256u << 10, 32, 20);
  options.gosh.large_graph.pgpu = GetParam();
  options.gosh.large_graph.device_budget_bytes = 128u << 10;
  const auto result = must_embed(g, options);
  for (std::size_t i = 0; i < result.embedding.size(); ++i) {
    ASSERT_TRUE(std::isfinite(result.embedding.data()[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(Slots, LargeTrainerPgpuTest,
                         ::testing::Values(2, 3, 4));

class LargeTrainerBatchTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(LargeTrainerBatchTest, LargerBMeansFewerRotations) {
  const auto g = graph::rmat(11, 8000, 45);
  api::Options options = partitioned_options(256u << 10, 32, 64);
  options.gosh.large_graph.batch_B = GetParam();
  options.gosh.large_graph.device_budget_bytes = 128u << 10;
  const auto result = must_embed(g, options);
  const embedding::LevelReport& level = result.levels.front();
  // rotations ~ epochs / (B*K): monotone nonincreasing in B given fixed K.
  EXPECT_LE(level.rotations,
            std::max(1u, 64u / (GetParam() * level.partitions) + 1));
}

INSTANTIATE_TEST_SUITE_P(Batches, LargeTrainerBatchTest,
                         ::testing::Values(1, 2, 5, 10));

}  // namespace
}  // namespace gosh
