// net::json — the strict reader/writer under the HTTP wire: whole-text
// parsing, structured rejection of malformed documents, deterministic
// insertion-ordered dumping, and unicode escapes.
#include <gtest/gtest.h>

#include <string>

#include "gosh/net/json.hpp"

namespace gosh::net::json {
namespace {

TEST(NetJson, ParsesScalars) {
  EXPECT_TRUE(Value::parse("null").value().is_null());
  EXPECT_TRUE(Value::parse("true").value().as_bool());
  EXPECT_FALSE(Value::parse("false").value().as_bool());
  EXPECT_DOUBLE_EQ(Value::parse("-12.5e1").value().as_number(), -125.0);
  EXPECT_EQ(Value::parse("\"hi\"").value().as_string(), "hi");
  // Surrounding whitespace is fine; it is still one whole document.
  EXPECT_DOUBLE_EQ(Value::parse("  42 \n").value().as_number(), 42.0);
}

TEST(NetJson, ParsesNestedDocumentAndFinds) {
  auto parsed = Value::parse(
      R"({"queries": [{"vertex": 17}, {"vector": [0.5, -1]}], "k": 10})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  const Value& root = parsed.value();
  ASSERT_TRUE(root.is_object());
  const Value* queries = root.find("queries");
  ASSERT_NE(queries, nullptr);
  ASSERT_EQ(queries->size(), 2u);
  EXPECT_DOUBLE_EQ((*queries)[0].find("vertex")->as_number(), 17.0);
  EXPECT_DOUBLE_EQ((*(*queries)[1].find("vector"))[1].as_number(), -1.0);
  EXPECT_DOUBLE_EQ(root.find("k")->as_number(), 10.0);
  EXPECT_EQ(root.find("missing"), nullptr);
}

TEST(NetJson, RejectsMalformedDocuments) {
  // Each rejection is kInvalidArgument with a byte offset in the message.
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "nul", "tru", "01",
        "+1", "1.", "\"unterminated", "\"bad \\x escape\"", "{\"a\":1} extra",
        "[1] [2]", "{\"dup\":1,\"dup\":2}", "nan", "Infinity"}) {
    auto parsed = Value::parse(bad);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << bad;
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), api::StatusCode::kInvalidArgument);
    }
  }
}

TEST(NetJson, DepthCapStopsHostileNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  EXPECT_FALSE(Value::parse(deep).ok());
  // The same shape under the cap parses.
  EXPECT_TRUE(Value::parse(deep.substr(150, 100)).ok());
}

TEST(NetJson, DumpKeepsInsertionOrderAndRoundTrips) {
  Value root = Value::object();
  root.set("zeta", Value(1));
  root.set("alpha", Value(true));
  Value list = Value::array();
  list.push_back(Value(0.5));
  list.push_back(Value("x\"y\\z"));
  list.push_back(Value());
  root.set("list", std::move(list));
  const std::string text = root.dump();
  // Insertion order, not alphabetical.
  EXPECT_LT(text.find("zeta"), text.find("alpha"));
  EXPECT_EQ(text, R"({"zeta":1,"alpha":true,"list":[0.5,"x\"y\\z",null]})");

  auto reparsed = Value::parse(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().to_string();
  EXPECT_EQ(reparsed.value().dump(), text);
}

TEST(NetJson, IntegersDumpWithoutFraction) {
  EXPECT_EQ(Value(10).dump(), "10");
  EXPECT_EQ(Value(std::uint64_t{1} << 40).dump(), "1099511627776");
  EXPECT_EQ(Value(-3.0).dump(), "-3");
  EXPECT_EQ(Value(0.25).dump(), "0.25");
}

TEST(NetJson, UnicodeEscapesDecodeToUtf8) {
  // U+00E9 (2-byte), U+4E2D (3-byte), U+1F600 (a surrogate pair).
  auto parsed = Value::parse(R"("a\u00e9\u4e2d\ud83d\ude00b")");
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().as_string(),
            "a\xc3\xa9\xe4\xb8\xad\xf0\x9f\x98\x80"
            "b");
  // A lone surrogate half is malformed.
  EXPECT_FALSE(Value::parse(R"("\ud83d")").ok());
}

TEST(NetJson, EscapeCoversControlCharacters) {
  EXPECT_EQ(escape("a\"b\\c\nd\x01"), "a\\\"b\\\\c\\nd\\u0001");
}

}  // namespace
}  // namespace gosh::net::json
