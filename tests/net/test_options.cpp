// NetOptions — the HTTP front-end's options surface: net-key parsing, the
// ServeOptions delegation (one flag set across gosh_serve and gosh_query),
// the scan-threads rename, strict from_args, and file/flag layering.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "gosh/net/options.hpp"

namespace gosh::net {
namespace {

/// argv helper: from_args wants mutable char**.
api::Result<NetOptions> parse(std::vector<std::string> args) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("gosh_serve"));
  for (std::string& arg : args) argv.push_back(arg.data());
  return NetOptions::from_args(static_cast<int>(argv.size()), argv.data());
}

TEST(NetOptions, DefaultsAreSaneButNeedAStore) {
  NetOptions options;
  EXPECT_EQ(options.host, "127.0.0.1");
  EXPECT_EQ(options.port, 8080u);
  EXPECT_EQ(options.threads, 4u);
  EXPECT_FALSE(options.allow_remote_shutdown);
  // validate() delegates to the embedded ServeOptions, which requires a
  // store path — the same contract gosh_query enforces.
  EXPECT_FALSE(options.validate().is_ok());
  options.serve.store_path = "emb.store";
  EXPECT_TRUE(options.validate().is_ok());
}

TEST(NetOptions, SetHandlesNetKeysAndDelegatesTheRest) {
  NetOptions options;
  EXPECT_TRUE(options.set("port", "0").is_ok());
  EXPECT_TRUE(options.set("threads", "2").is_ok());
  EXPECT_TRUE(options.set("max-body", "4096").is_ok());
  EXPECT_TRUE(options.set("rate-qps", "12.5").is_ok());
  EXPECT_TRUE(options.set("burst", "4").is_ok());
  EXPECT_TRUE(options.set("store", "emb.store").is_ok());
  EXPECT_TRUE(options.set("strategy", "exact").is_ok());
  EXPECT_TRUE(options.set("k", "7").is_ok());
  EXPECT_EQ(options.port, 0u);
  EXPECT_EQ(options.threads, 2u);
  EXPECT_EQ(options.max_body, 4096u);
  EXPECT_DOUBLE_EQ(options.rate_qps, 12.5);
  EXPECT_DOUBLE_EQ(options.burst, 4.0);
  EXPECT_EQ(options.serve.store_path, "emb.store");
  EXPECT_EQ(options.serve.strategy, "exact");
  EXPECT_EQ(options.serve.k, 7u);
  // A key neither layer knows stays an error.
  EXPECT_FALSE(options.set("warp-speed", "9").is_ok());
}

TEST(NetOptions, ScanThreadsNamesTheServeSidePool) {
  NetOptions options;
  ASSERT_TRUE(options.set("threads", "3").is_ok());
  ASSERT_TRUE(options.set("scan-threads", "5").is_ok());
  EXPECT_EQ(options.threads, 3u);        // connection workers
  EXPECT_EQ(options.serve.threads, 5u);  // scan parallelism
}

TEST(NetOptions, FromArgsParsesBooleansWithoutValues) {
  auto parsed = parse({"--store", "emb.store", "--port", "0",
                       "--allow-remote-shutdown", "--no-verify",
                       "--rate-qps", "100", "--burst", "10"});
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_TRUE(parsed.value().allow_remote_shutdown);
  EXPECT_FALSE(parsed.value().serve.verify_checksums);
  EXPECT_DOUBLE_EQ(parsed.value().rate_qps, 100.0);
}

TEST(NetOptions, FromArgsRejectsWhatValidateRejects) {
  // Missing store.
  EXPECT_FALSE(parse({"--port", "0"}).ok());
  // Out-of-range port.
  EXPECT_FALSE(parse({"--store", "s", "--port", "70000"}).ok());
  // burst without a rate.
  EXPECT_FALSE(parse({"--store", "s", "--burst", "5"}).ok());
  // Negative rate (strict real parse).
  EXPECT_FALSE(parse({"--store", "s", "--rate-qps", "-3"}).ok());
  // Dangling flag.
  EXPECT_FALSE(parse({"--store", "s", "--port"}).ok());
  // Stray non-flag argument.
  EXPECT_FALSE(parse({"emb.store"}).ok());
  // Unknown flag (on either surface).
  EXPECT_FALSE(parse({"--store", "s", "--warp-speed", "9"}).ok());
}

TEST(NetOptions, OptionsFileLoadsFirstAndFlagsOverride) {
  const std::string path = testing::TempDir() + "net_options_" +
                           std::to_string(::getpid()) + ".conf";
  {
    std::ofstream out(path);
    out << "# serving front-end config\n"
        << "store = emb.store\n"
        << "port = 9999\n"
        << "threads = 8\n"
        << "rate-qps = 50\n";
  }
  auto parsed = parse({"--options", path, "--port", "0"});
  std::remove(path.c_str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().port, 0u);       // the flag wins
  EXPECT_EQ(parsed.value().threads, 8u);    // the file holds
  EXPECT_DOUBLE_EQ(parsed.value().rate_qps, 50.0);
  EXPECT_EQ(parsed.value().serve.store_path, "emb.store");
}

TEST(NetOptions, FromFileMatchesSetSemantics) {
  const std::string path = testing::TempDir() + "net_options_file_" +
                           std::to_string(::getpid()) + ".conf";
  {
    std::ofstream out(path);
    out << "store = emb.store\nscan-threads = 6\nmax-header = 128\n";
  }
  auto parsed = NetOptions::from_file(path);
  std::remove(path.c_str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().serve.threads, 6u);
  EXPECT_EQ(parsed.value().max_header, 128u);
}

TEST(NetOptions, HelpShortCircuits) {
  auto parsed = parse({"--help"});
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().show_help);
}

}  // namespace
}  // namespace gosh::net
