// FaultInjector + the server's chaos hook + the client's whole-exchange
// deadline — the failure-mode tooling under the distributed serving layer
// (suites FaultInjector* / HttpClient* are in the TSan CI filter).
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "gosh/net/client.hpp"
#include "gosh/net/fault_injector.hpp"
#include "gosh/net/json.hpp"
#include "gosh/net/server.hpp"

namespace gosh::net {
namespace {

std::vector<FaultInjector::Action> draw(FaultInjector& injector, int n) {
  std::vector<FaultInjector::Action> actions;
  actions.reserve(n);
  for (int i = 0; i < n; ++i) actions.push_back(injector.next());
  return actions;
}

TEST(FaultInjector, OffByDefaultAndDrawsNothing) {
  FaultInjector injector;
  EXPECT_FALSE(injector.active());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(injector.next(), FaultInjector::Action::kNone);
  }
  EXPECT_EQ(injector.delay_ms(), 0u);
}

TEST(FaultInjector, DelayAloneArmsTheInjector) {
  FaultInjector injector;
  injector.configure({.delay_ms = 5});
  EXPECT_TRUE(injector.active());
  EXPECT_EQ(injector.delay_ms(), 5u);
  EXPECT_EQ(injector.next(), FaultInjector::Action::kNone);
}

TEST(FaultInjector, DrawSequenceIsDeterministicUnderASeed) {
  const FaultOptions mix{.drop_rate = 0.25,
                         .error_rate = 0.25,
                         .stall_rate = 0.25,
                         .seed = 1234};
  FaultInjector a(mix);
  FaultInjector b(mix);
  EXPECT_EQ(draw(a, 500), draw(b, 500));

  // Reconfiguring restarts the sequence from draw 0.
  a.configure(mix);
  FaultInjector c(mix);
  EXPECT_EQ(draw(a, 100), draw(c, 100));

  // A different seed is a different sequence.
  FaultInjector d({.drop_rate = 0.25,
                   .error_rate = 0.25,
                   .stall_rate = 0.25,
                   .seed = 99});
  EXPECT_NE(draw(b, 500), draw(d, 500));
}

TEST(FaultInjector, RatesPartitionTheDrawSpace) {
  FaultInjector injector({.drop_rate = 0.3,
                          .error_rate = 0.2,
                          .stall_rate = 0.1,
                          .seed = 7});
  int counts[4] = {0, 0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<int>(injector.next())];
  }
  // splitmix64 over 20k draws lands each bucket well within +/- 2% of its
  // configured rate.
  EXPECT_NEAR(counts[static_cast<int>(FaultInjector::Action::kDrop)],
              0.3 * n, 0.02 * n);
  EXPECT_NEAR(counts[static_cast<int>(FaultInjector::Action::kError)],
              0.2 * n, 0.02 * n);
  EXPECT_NEAR(counts[static_cast<int>(FaultInjector::Action::kStall)],
              0.1 * n, 0.02 * n);
  EXPECT_NEAR(counts[static_cast<int>(FaultInjector::Action::kNone)],
              0.4 * n, 0.02 * n);
}

NetOptions loopback() {
  NetOptions options;
  options.host = "127.0.0.1";
  options.port = 0;
  options.threads = 2;
  return options;
}

TEST(FaultInjector, ServerAnswersSynthetic500sWhenConfigured) {
  NetOptions options = loopback();
  options.chaos_500_rate = 1.0;
  serving::MetricsRegistry metrics;
  HttpServer server(options, &metrics);
  server.handle("GET", "/work", [](const HttpRequest&) {
    return HttpResponse::json(200, "{\"ok\":true}");
  });
  add_builtin_routes(server, metrics);
  ASSERT_TRUE(server.start().is_ok());

  HttpClient client("127.0.0.1", server.port(), 2000);
  auto response = client.get("/work");
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_EQ(response.value().status, 500);
  EXPECT_NE(response.value().body.find("chaos"), std::string::npos);

  // The exempt (rate_limited=false) routes never see chaos: probes must
  // observe the server, not the injected faults.
  auto health = client.get("/healthz");
  ASSERT_TRUE(health.ok()) << health.status().to_string();
  EXPECT_EQ(health.value().status, 200);

  EXPECT_GE(metrics.counter("gosh_http_chaos_injected_total").value(), 1u);
  server.shutdown();
}

TEST(FaultInjector, ServerDropsConnectionsWhenConfigured) {
  NetOptions options = loopback();
  options.chaos_drop_rate = 1.0;
  serving::MetricsRegistry metrics;
  HttpServer server(options, &metrics);
  server.handle("GET", "/work", [](const HttpRequest&) {
    return HttpResponse::json(200, "{\"ok\":true}");
  });
  ASSERT_TRUE(server.start().is_ok());

  HttpClient client("127.0.0.1", server.port(), 2000);
  auto response = client.get("/work");
  // A drop is a transport-level failure: the socket closes with no bytes.
  EXPECT_FALSE(response.ok());
  EXPECT_GE(metrics.counter("gosh_http_chaos_injected_total").value(), 1u);
  server.shutdown();
}

TEST(FaultInjector, ServerEnforcesTheDeadlineHeader) {
  serving::MetricsRegistry metrics;
  HttpServer server(loopback(), &metrics);
  server.handle("GET", "/work", [](const HttpRequest&) {
    return HttpResponse::json(200, "{\"ok\":true}");
  });
  ASSERT_TRUE(server.start().is_ok());

  HttpClient client("127.0.0.1", server.port(), 2000);
  // A zero budget is always already spent by dispatch time.
  auto expired = client.request("GET", "/work", {}, {{"X-Deadline-Ms", "0"}});
  ASSERT_TRUE(expired.ok()) << expired.status().to_string();
  EXPECT_EQ(expired.value().status, 504);
  EXPECT_NE(expired.value().body.find("deadline_exceeded"),
            std::string::npos);
  EXPECT_GE(metrics.counter("gosh_http_deadline_expired_total").value(), 1u);

  // A generous budget passes through untouched.
  auto fine = client.request("GET", "/work", {}, {{"X-Deadline-Ms", "5000"}});
  ASSERT_TRUE(fine.ok()) << fine.status().to_string();
  EXPECT_EQ(fine.value().status, 200);
  server.shutdown();
}

/// A one-connection server that drips its response `bytes` bytes at
/// `interval_ms` per byte — each read lands inside any sane per-op
/// timeout, so only a WHOLE-exchange deadline can bound the request.
class SlowDripServer {
 public:
  SlowDripServer(int body_bytes, int interval_ms)
      : body_bytes_(body_bytes), interval_ms_(interval_ms) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len),
              0);
    port_ = ntohs(addr.sin_port);
    EXPECT_EQ(::listen(fd_, 1), 0);
    thread_ = std::thread([this] { run(); });
  }

  ~SlowDripServer() {
    if (thread_.joinable()) thread_.join();
    if (fd_ >= 0) ::close(fd_);
  }

  unsigned short port() const { return port_; }

 private:
  void run() {
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn < 0) return;
    char scratch[4096];
    // Read the request head (one recv is enough for the tiny request).
    (void)::recv(conn, scratch, sizeof(scratch), 0);
    const std::string head = "HTTP/1.1 200 OK\r\nContent-Length: " +
                             std::to_string(body_bytes_) +
                             "\r\nConnection: close\r\n\r\n";
    (void)::send(conn, head.data(), head.size(), MSG_NOSIGNAL);
    for (int i = 0; i < body_bytes_; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms_));
      if (::send(conn, "x", 1, MSG_NOSIGNAL) <= 0) break;  // client gave up
    }
    ::close(conn);
  }

  int fd_ = -1;
  unsigned short port_ = 0;
  int body_bytes_;
  int interval_ms_;
  std::thread thread_;
};

TEST(HttpClient, TotalDeadlineBoundsASlowDripResponse) {
  // 10 bytes at 40 ms/byte = ~400 ms of dripping; every single read lands
  // well inside the 1 s per-op timeout, so the per-op bound never fires.
  SlowDripServer server(10, 40);
  HttpClient client("127.0.0.1", server.port(), /*timeout_ms=*/1000);

  const auto start = std::chrono::steady_clock::now();
  auto bounded = client.request("GET", "/slow", {}, {},
                                /*total_deadline_ms=*/150);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_FALSE(bounded.ok())
      << "a 150 ms whole-exchange deadline must not survive 400 ms of drip";
  // Well under the drip total: the deadline cut the exchange off. The
  // regression this guards: per-op-only timeouts let each 40 ms drip
  // reset the clock, stalling ~N x the intended bound.
  EXPECT_LT(elapsed, 390);
}

TEST(HttpClient, NoDeadlineKeepsTheHistoricalPerOpBehavior) {
  SlowDripServer server(5, 20);
  HttpClient client("127.0.0.1", server.port(), /*timeout_ms=*/1000);
  auto response = client.request("GET", "/slow");
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_EQ(response.value().status, 200);
  EXPECT_EQ(response.value().body, "xxxxx");
}

TEST(HttpServer, HealthzReportsReadinessAndGeometry) {
  serving::MetricsRegistry metrics;
  HealthState health;
  HttpServer server(loopback(), &metrics);
  add_builtin_routes(server, metrics, nullptr, &health);
  ASSERT_TRUE(server.start().is_ok());
  HttpClient client("127.0.0.1", server.port(), 2000);

  // Liveness before readiness: the socket answers while "loading".
  auto loading = client.get("/healthz");
  ASSERT_TRUE(loading.ok()) << loading.status().to_string();
  EXPECT_EQ(loading.value().status, 200);
  auto body = json::Value::parse(loading.value().body);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body.value().find("status")->as_string(), "loading");
  EXPECT_FALSE(body.value().find("ready")->as_bool());
  auto readyz = client.get("/readyz");
  ASSERT_TRUE(readyz.ok());
  EXPECT_EQ(readyz.value().status, 503);

  health.rows.store(1234, std::memory_order_relaxed);
  health.dim.store(16, std::memory_order_relaxed);
  health.shards.store(3, std::memory_order_relaxed);
  health.store_generation.store(0xDEADBEEFCAFEF00DULL,
                                std::memory_order_relaxed);
  health.ready.store(true, std::memory_order_release);

  auto ready = client.get("/healthz");
  ASSERT_TRUE(ready.ok());
  body = json::Value::parse(ready.value().body);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body.value().find("status")->as_string(), "ok");
  EXPECT_TRUE(body.value().find("ready")->as_bool());
  EXPECT_EQ(body.value().find("rows")->as_number(), 1234.0);
  EXPECT_EQ(body.value().find("dim")->as_number(), 16.0);
  EXPECT_EQ(body.value().find("shards")->as_number(), 3.0);
  // 64-bit fingerprints do not survive a JSON double; the wire carries a
  // string on purpose.
  EXPECT_EQ(body.value().find("store_generation")->as_string(),
            std::to_string(0xDEADBEEFCAFEF00DULL));
  readyz = client.get("/readyz");
  ASSERT_TRUE(readyz.ok());
  EXPECT_EQ(readyz.value().status, 200);
  server.shutdown();
}

}  // namespace
}  // namespace gosh::net
