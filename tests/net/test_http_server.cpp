// HttpServer + HttpClient — live loopback exchanges on ephemeral ports:
// routing, keep-alive, concurrent clients, graceful shutdown, admission
// control, and the malformed-wire suite driven through HttpClient::raw()
// (suites HttpServer* / HttpClient* are in the TSan CI filter).
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "gosh/net/client.hpp"
#include "gosh/net/json.hpp"
#include "gosh/net/query_handler.hpp"
#include "gosh/net/server.hpp"
#include "gosh/trace/trace.hpp"

namespace gosh::net {
namespace {

/// Answers every query with one fixed neighbor — enough service for the
/// wire to be exercised end to end without a store on disk.
class FakeService final : public serving::QueryService {
 public:
  api::Result<serving::QueryResponse> serve(
      const serving::QueryRequest& request) override {
    if (handler_sleep_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(handler_sleep_ms));
    }
    serving::QueryResponse response;
    response.results.resize(request.queries.size(),
                            {serving::Neighbor{3, 0.5f}});
    response.seconds = 0.001;
    served.fetch_add(1, std::memory_order_relaxed);
    return response;
  }
  vid_t rows() const noexcept override { return 100; }
  unsigned dim() const noexcept override { return 4; }
  serving::Metric default_metric() const noexcept override {
    return serving::Metric::kCosine;
  }
  std::string_view strategy_name() const noexcept override { return "fake"; }
  api::Result<std::vector<float>> row_vector(vid_t) const override {
    return std::vector<float>(dim(), 0.0f);
  }

  std::atomic<std::uint64_t> served{0};
  int handler_sleep_ms = 0;
};

NetOptions loopback() {
  NetOptions options;
  options.host = "127.0.0.1";
  options.port = 0;  // ephemeral: ctest -j safe
  options.threads = 2;
  return options;
}

/// A started server with the query wire and the builtin routes mounted.
struct ServerFixture {
  explicit ServerFixture(NetOptions options = loopback())
      : handler(service), server(options, &metrics) {
    server.handle("POST", "/v1/query", [this](const HttpRequest& request) {
      return handler.handle(request);
    });
    server.handle("GET", "/ping", [](const HttpRequest&) {
      return HttpResponse::json(200, "{\"pong\":true}");
    });
    add_builtin_routes(server, metrics, server.tracer());
    const api::Status status = server.start();
    EXPECT_TRUE(status.is_ok()) << status.to_string();
  }
  ~ServerFixture() { server.shutdown(); }

  HttpClient client(int timeout_ms = 5000) {
    return HttpClient("127.0.0.1", server.port(), timeout_ms);
  }

  serving::MetricsRegistry metrics;
  FakeService service;
  QueryHandler handler;
  HttpServer server;
};

constexpr const char* kQuery = R"({"queries": [{"vertex": 7}], "k": 3})";

TEST(HttpServer, ServesRoutesOnAnEphemeralPort) {
  ServerFixture fixture;
  ASSERT_NE(fixture.server.port(), 0);
  HttpClient client = fixture.client();

  auto ping = client.get("/ping");
  ASSERT_TRUE(ping.ok()) << ping.status().to_string();
  EXPECT_EQ(ping.value().status, 200);
  EXPECT_EQ(ping.value().body, "{\"pong\":true}");

  auto query = client.post_json("/v1/query", kQuery);
  ASSERT_TRUE(query.ok()) << query.status().to_string();
  EXPECT_EQ(query.value().status, 200);
  EXPECT_NE(query.value().body.find("\"results\""), std::string::npos);
  EXPECT_EQ(fixture.service.served.load(), 1u);

  auto health = client.get("/healthz");
  ASSERT_TRUE(health.ok()) << health.status().to_string();
  EXPECT_EQ(health.value().status, 200);
  auto parsed = json::Value::parse(health.value().body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  const json::Value& root = parsed.value();
  ASSERT_NE(root.find("status"), nullptr);
  EXPECT_EQ(root.find("status")->as_string(), "ok");
  ASSERT_NE(root.find("uptime_seconds"), nullptr);
  EXPECT_GE(root.find("uptime_seconds")->as_number(), 0.0);
  ASSERT_NE(root.find("build"), nullptr);
  EXPECT_NE(root.find("build")->find("compiler"), nullptr);
  ASSERT_NE(root.find("simd_isa"), nullptr);
  EXPECT_FALSE(root.find("simd_isa")->as_string().empty());
}

TEST(HttpServer, EchoesInboundRequestIdAndMintsOneOtherwise) {
  ServerFixture fixture;
  HttpClient client = fixture.client();

  auto echoed = client.request("POST", "/v1/query", kQuery,
                               {{"Content-Type", "application/json"},
                                {"X-Request-Id", "trace-me-42"}});
  ASSERT_TRUE(echoed.ok()) << echoed.status().to_string();
  ASSERT_NE(echoed.value().header("X-Request-Id"), nullptr);
  EXPECT_EQ(*echoed.value().header("X-Request-Id"), "trace-me-42");

  auto minted = client.post_json("/v1/query", kQuery);
  ASSERT_TRUE(minted.ok()) << minted.status().to_string();
  ASSERT_NE(minted.value().header("X-Request-Id"), nullptr);
  EXPECT_EQ(minted.value().header("X-Request-Id")->substr(0, 5), "gosh-");

  // An inbound id full of log-breaking bytes comes back sanitized.
  auto hostile = client.request("GET", "/ping", "",
                                {{"X-Request-Id", "a b\"c\\d"}});
  ASSERT_TRUE(hostile.ok()) << hostile.status().to_string();
  ASSERT_NE(hostile.value().header("X-Request-Id"), nullptr);
  EXPECT_EQ(*hostile.value().header("X-Request-Id"), "a_b_c_d");
}

TEST(HttpServer, ErrorBodiesCarryTheRequestId) {
  ServerFixture fixture;
  HttpClient client = fixture.client();

  // Routing error (404), handler error (400), and wire error (431 via a
  // malformed request line is covered elsewhere): each body must be strict
  // JSON whose error.request_id matches the response header.
  for (const auto& [method, target, body] :
       {std::tuple<const char*, const char*, const char*>{"GET", "/nope", ""},
        {"POST", "/v1/query", "{not json"}}) {
    auto response = client.request(method, target, body,
                                   {{"X-Request-Id", "err-7"}});
    ASSERT_TRUE(response.ok()) << response.status().to_string();
    EXPECT_GE(response.value().status, 400);
    ASSERT_NE(response.value().header("X-Request-Id"), nullptr);
    EXPECT_EQ(*response.value().header("X-Request-Id"), "err-7");
    auto parsed = json::Value::parse(response.value().body);
    ASSERT_TRUE(parsed.ok()) << parsed.status().to_string() << ": "
                             << response.value().body;
    const json::Value* error = parsed.value().find("error");
    ASSERT_NE(error, nullptr);
    ASSERT_NE(error->find("request_id"), nullptr) << response.value().body;
    EXPECT_EQ(error->find("request_id")->as_string(), "err-7");
  }
}

TEST(HttpServer, DebugTracesServesChromeJsonForSampledRequests) {
  NetOptions options = loopback();
  options.trace_sample_rate = 1.0;
  ServerFixture fixture(options);
  ASSERT_NE(fixture.server.tracer(), nullptr);
  fixture.server.tracer()->clear();
  HttpClient client = fixture.client();

  auto query = client.request("POST", "/v1/query", kQuery,
                              {{"Content-Type", "application/json"},
                               {"X-Request-Id", "debug-traces-1"}});
  ASSERT_TRUE(query.ok()) << query.status().to_string();
  ASSERT_EQ(query.value().status, 200);

  auto traces = client.get("/debug/traces");
  ASSERT_TRUE(traces.ok()) << traces.status().to_string();
  EXPECT_EQ(traces.value().status, 200);
  auto parsed = json::Value::parse(traces.value().body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  const json::Value* events = parsed.value().find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  bool saw_handler = false, saw_parse = false, saw_id = false;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const json::Value& event = (*events)[i];
    const json::Value* name = event.find("name");
    if (name == nullptr || !name->is_string()) continue;
    if (name->as_string() == "handler") saw_handler = true;
    if (name->as_string() == "parse") saw_parse = true;
    const json::Value* args = event.find("args");
    if (args != nullptr && args->find("request_id") != nullptr &&
        args->find("request_id")->as_string() == "debug-traces-1") {
      saw_id = true;
    }
  }
  EXPECT_TRUE(saw_handler) << traces.value().body;
  EXPECT_TRUE(saw_parse) << traces.value().body;
  EXPECT_TRUE(saw_id) << traces.value().body;
}

TEST(HttpServer, MetricsEndpointSpeaksPrometheusText) {
  ServerFixture fixture;
  HttpClient client = fixture.client();
  ASSERT_TRUE(client.post_json("/v1/query", kQuery).ok());

  auto response = client.get("/metrics");
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_EQ(response.value().status, 200);
  ASSERT_NE(response.value().header("Content-Type"), nullptr);
  EXPECT_NE(response.value().header("Content-Type")->find("text/plain"),
            std::string::npos);

  const std::string& body = response.value().body;
  EXPECT_NE(body.find("# TYPE gosh_http_requests_total_post_v1_query counter"),
            std::string::npos);
  EXPECT_NE(body.find("gosh_http_request_seconds_post_v1_query_count 1"),
            std::string::npos);
  EXPECT_NE(body.find("# TYPE gosh_http_inflight_connections gauge"),
            std::string::npos);
  EXPECT_NE(body.find("gosh_http_connections_total 1"), std::string::npos);

  // Every sample line must parse as "name[{labels}] value" with a numeric
  // value — the contract a Prometheus scraper depends on.
  std::size_t line_start = 0, samples = 0;
  while (line_start < body.size()) {
    std::size_t line_end = body.find('\n', line_start);
    if (line_end == std::string::npos) line_end = body.size();
    const std::string line = body.substr(line_start, line_end - line_start);
    line_start = line_end + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name = line.substr(0, space);
    ASSERT_FALSE(name.empty()) << line;
    EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(name[0])) ||
                name[0] == '_')
        << line;
    char* end = nullptr;
    std::strtod(line.c_str() + space + 1, &end);
    EXPECT_EQ(*end, '\0') << "non-numeric sample value: " << line;
    ++samples;
  }
  EXPECT_GT(samples, 10u);
}

TEST(HttpServer, AnswersNotFoundAndMethodNotAllowed) {
  ServerFixture fixture;
  HttpClient client = fixture.client();

  auto missing = client.get("/nope");
  ASSERT_TRUE(missing.ok()) << missing.status().to_string();
  EXPECT_EQ(missing.value().status, 404);
  EXPECT_NE(missing.value().body.find("\"not_found\""), std::string::npos);

  auto wrong_method = client.get("/v1/query");
  ASSERT_TRUE(wrong_method.ok()) << wrong_method.status().to_string();
  EXPECT_EQ(wrong_method.value().status, 405);
  ASSERT_NE(wrong_method.value().header("Allow"), nullptr);
  EXPECT_EQ(*wrong_method.value().header("Allow"), "POST");
}

TEST(HttpServer, KeepAliveServesManyRequestsOnOneConnection) {
  ServerFixture fixture;
  HttpClient client = fixture.client();
  for (int i = 0; i < 20; ++i) {
    auto response = client.post_json("/v1/query", kQuery);
    ASSERT_TRUE(response.ok()) << response.status().to_string();
    ASSERT_EQ(response.value().status, 200);
  }
  EXPECT_EQ(fixture.metrics.counter("gosh_http_connections_total").value(),
            1u);
  EXPECT_EQ(fixture.service.served.load(), 20u);
}

TEST(HttpServer, KeepaliveRequestCapTurnsTheConnectionOver) {
  NetOptions options = loopback();
  options.keepalive_requests = 1;
  ServerFixture fixture(options);
  HttpClient client = fixture.client();
  for (int i = 0; i < 3; ++i) {
    auto response = client.get("/ping");
    ASSERT_TRUE(response.ok()) << response.status().to_string();
    EXPECT_EQ(response.value().status, 200);
    ASSERT_NE(response.value().header("Connection"), nullptr);
    EXPECT_EQ(*response.value().header("Connection"), "close");
  }
  // Each request had to redial.
  EXPECT_EQ(fixture.metrics.counter("gosh_http_connections_total").value(),
            3u);
}

TEST(HttpServer, ConcurrentClientsAreAllServed) {
  NetOptions options = loopback();
  options.threads = 4;
  ServerFixture fixture(options);
  constexpr int kClients = 4;
  constexpr int kRequests = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&fixture, &failures] {
      HttpClient client("127.0.0.1", fixture.server.port());
      for (int i = 0; i < kRequests; ++i) {
        auto response = client.post_json("/v1/query", kQuery);
        if (!response.ok() || response.value().status != 200) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(fixture.service.served.load(),
            static_cast<std::uint64_t>(kClients * kRequests));
}

TEST(HttpServer, GracefulShutdownReleasesAnIdleKeepAliveConnection) {
  auto fixture = std::make_unique<ServerFixture>();
  HttpClient client = fixture->client();
  ASSERT_TRUE(client.get("/ping").ok());
  ASSERT_TRUE(client.connected());  // parked keep-alive connection

  // Must return promptly even though a worker is blocked reading that
  // idle connection — the self-pipe wakes it.
  fixture->server.shutdown();
  EXPECT_FALSE(fixture->server.running());

  auto after = client.get("/ping");
  EXPECT_FALSE(after.ok());
  fixture.reset();
}

TEST(HttpServer, ShutdownLetsAnInFlightRequestFinish) {
  ServerFixture fixture;
  fixture.service.handler_sleep_ms = 200;

  std::atomic<bool> got_response{false};
  std::atomic<int> status{0};
  std::thread slow_client([&] {
    HttpClient client("127.0.0.1", fixture.server.port());
    auto response = client.post_json("/v1/query", kQuery);
    if (response.ok()) {
      got_response = true;
      status = response.value().status;
    }
  });
  // Let the request reach the handler, then stop the server under it.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  fixture.server.shutdown();
  slow_client.join();

  EXPECT_TRUE(got_response.load());
  EXPECT_EQ(status.load(), 200);
}

TEST(HttpServer, ShutdownIsIdempotent) {
  ServerFixture fixture;
  fixture.server.shutdown();
  fixture.server.shutdown();
  EXPECT_FALSE(fixture.server.running());
}

TEST(HttpServer, RateLimiterSheds429WithRetryAfter) {
  NetOptions options = loopback();
  options.rate_qps = 0.5;  // refills far slower than the test runs
  options.burst = 1.0;
  ServerFixture fixture(options);
  HttpClient client = fixture.client();

  auto first = client.post_json("/v1/query", kQuery);
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  EXPECT_EQ(first.value().status, 200);

  auto second = client.post_json("/v1/query", kQuery);
  ASSERT_TRUE(second.ok()) << second.status().to_string();
  EXPECT_EQ(second.value().status, 429);
  EXPECT_NE(second.value().body.find("\"rate_limited\""), std::string::npos);
  ASSERT_NE(second.value().header("Retry-After"), nullptr);
  EXPECT_GE(std::atoi(second.value().header("Retry-After")->c_str()), 1);

  // The connection survived the shed, observability stays reachable, and
  // the shed is counted.
  auto health = client.get("/healthz");
  ASSERT_TRUE(health.ok()) << health.status().to_string();
  EXPECT_EQ(health.value().status, 200);
  EXPECT_GE(fixture.metrics.counter("gosh_http_rate_limited_total").value(),
            1u);
  auto metrics = client.get("/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics.value().body.find("gosh_http_rate_limited_total"),
            std::string::npos);
}

TEST(HttpServer, PerConnectionLimiterShedsAHotClient) {
  NetOptions options = loopback();
  options.conn_rate_qps = 0.5;
  options.conn_burst = 2.0;
  ServerFixture fixture(options);
  HttpClient client = fixture.client();
  int shed = 0;
  for (int i = 0; i < 4; ++i) {
    auto response = client.post_json("/v1/query", kQuery);
    ASSERT_TRUE(response.ok()) << response.status().to_string();
    if (response.value().status == 429) ++shed;
  }
  EXPECT_EQ(shed, 2);
  // A fresh connection gets a fresh bucket.
  HttpClient other = fixture.client();
  auto response = other.post_json("/v1/query", kQuery);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, 200);
}

// ---- Malformed wire, via HttpClient::raw(). -------------------------------

TEST(HttpClient, TruncatedBodyWithHalfCloseIsA400) {
  ServerFixture fixture;
  HttpClient client = fixture.client();
  auto response = client.raw(
      "POST /v1/query HTTP/1.1\r\nHost: t\r\nContent-Length: 100\r\n\r\n{\"qu",
      /*half_close_after_send=*/true);
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_EQ(response.value().status, 400);
  EXPECT_NE(response.value().body.find("\"truncated_body\""),
            std::string::npos);
  // The server is still healthy afterwards.
  EXPECT_EQ(fixture.client().get("/ping").value().status, 200);
}

TEST(HttpClient, StalledBodyTimesOutWithA408) {
  NetOptions options = loopback();
  options.read_timeout_ms = 100;
  ServerFixture fixture(options);
  HttpClient client = fixture.client();
  auto response = client.raw(
      "POST /v1/query HTTP/1.1\r\nHost: t\r\nContent-Length: 100\r\n\r\n{\"qu");
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_EQ(response.value().status, 408);
}

TEST(HttpClient, OversizedContentLengthIsA413) {
  NetOptions options = loopback();
  options.max_body = 64;
  ServerFixture fixture(options);
  HttpClient client = fixture.client();
  auto response = client.raw(
      "POST /v1/query HTTP/1.1\r\nHost: t\r\nContent-Length: 100000\r\n\r\n");
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_EQ(response.value().status, 413);
  EXPECT_NE(response.value().body.find("\"body_too_large\""),
            std::string::npos);
}

TEST(HttpClient, OversizedHeaderBlockIsA431) {
  NetOptions options = loopback();
  options.max_header = 128;
  ServerFixture fixture(options);
  HttpClient client = fixture.client();
  std::string head = "GET /ping HTTP/1.1\r\nHost: t\r\nX-Pad: ";
  head.append(512, 'a');  // never terminated: the block only grows
  auto response = client.raw(head, /*half_close_after_send=*/true);
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_EQ(response.value().status, 431);
}

TEST(HttpClient, MalformedContentLengthIsA400) {
  ServerFixture fixture;
  HttpClient client = fixture.client();
  auto response = client.raw(
      "POST /v1/query HTTP/1.1\r\nHost: t\r\nContent-Length: banana\r\n\r\n");
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_EQ(response.value().status, 400);
}

TEST(HttpClient, ChunkedTransferEncodingIsA501) {
  ServerFixture fixture;
  HttpClient client = fixture.client();
  auto response = client.raw(
      "POST /v1/query HTTP/1.1\r\nHost: t\r\n"
      "Transfer-Encoding: chunked\r\n\r\n0\r\n\r\n");
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_EQ(response.value().status, 501);
}

TEST(HttpClient, GarbageRequestLineIsA400) {
  ServerFixture fixture;
  HttpClient client = fixture.client();
  auto response = client.raw("this is not http\r\n\r\n");
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  EXPECT_EQ(response.value().status, 400);
  EXPECT_GE(fixture.metrics.counter("gosh_http_parse_errors_total").value(),
            1u);
}

TEST(HttpClient, ApplicationErrorsAreStructured4xxJson) {
  ServerFixture fixture;
  HttpClient client = fixture.client();
  for (const char* body :
       {"{not json at all",                       // bad JSON
        R"({"queries": [], "k": 3})",             // empty batch
        R"({"quieres": [{"vertex": 1}]})",        // unknown field
        R"({"queries": [{"vertex": 1}], "frobnicate": true})"}) {
    auto response = client.post_json("/v1/query", body);
    ASSERT_TRUE(response.ok()) << response.status().to_string();
    EXPECT_EQ(response.value().status, 400) << body;
    EXPECT_NE(response.value().body.find("\"error\""), std::string::npos)
        << body;
    ASSERT_NE(response.value().header("Content-Type"), nullptr);
    EXPECT_EQ(*response.value().header("Content-Type"), "application/json");
  }
  // Nothing reached the service, and the server still answers.
  EXPECT_EQ(fixture.service.served.load(), 0u);
  EXPECT_EQ(client.get("/ping").value().status, 200);
}

TEST(HttpClient, PipelinedRequestsAreAnsweredInOrder) {
  ServerFixture fixture;
  HttpClient client = fixture.client();
  // Two GETs in one write; the server must answer both off one buffer.
  const std::string two =
      "GET /ping HTTP/1.1\r\nHost: t\r\n\r\n"
      "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
  auto first = client.raw(two);
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  EXPECT_EQ(first.value().status, 200);
  EXPECT_EQ(first.value().body, "{\"pong\":true}");
}

}  // namespace
}  // namespace gosh::net
