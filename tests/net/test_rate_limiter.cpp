// RateLimiter — token-bucket refill math against an explicit clock, the
// Retry-After deficit, and concurrent admission (suite RateLimiter* is in
// the TSan CI filter).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "gosh/net/rate_limiter.hpp"

namespace gosh::net {
namespace {

TEST(RateLimiter, DisabledLimiterAdmitsEverything) {
  RateLimiter limiter(0.0, 0.0);
  EXPECT_FALSE(limiter.enabled());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(limiter.try_acquire(0.0));
  }
}

TEST(RateLimiter, BurstSpendsThenRejects) {
  RateLimiter limiter(/*qps=*/10.0, /*burst=*/5.0);
  EXPECT_TRUE(limiter.enabled());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(limiter.try_acquire(/*now_seconds=*/0.0)) << "token " << i;
  }
  double retry_after = 0.0;
  EXPECT_FALSE(limiter.try_acquire(0.0, &retry_after));
  // One token exists after 1/qps seconds of refill.
  EXPECT_NEAR(retry_after, 0.1, 1e-9);
}

TEST(RateLimiter, RefillsContinuouslyUpToBurst) {
  RateLimiter limiter(10.0, 5.0);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(limiter.try_acquire(0.0));
  EXPECT_FALSE(limiter.try_acquire(0.0));
  // 0.25 s of refill at 10/s = 2.5 tokens: two admits, then rejection.
  EXPECT_TRUE(limiter.try_acquire(0.25));
  EXPECT_TRUE(limiter.try_acquire(0.25));
  double retry_after = 0.0;
  EXPECT_FALSE(limiter.try_acquire(0.25, &retry_after));
  // 0.5 tokens remain; 0.05 s buys the missing half token.
  EXPECT_NEAR(retry_after, 0.05, 1e-9);
  // A long idle period caps at burst, not beyond it.
  EXPECT_NEAR(limiter.tokens(1000.0), 5.0, 1e-9);
}

TEST(RateLimiter, BurstDefaultsToOneSecondOfRate) {
  RateLimiter limiter(3.0, 0.0);
  EXPECT_DOUBLE_EQ(limiter.burst(), 3.0);
  // Sub-1 qps still buckets at least one request.
  RateLimiter slow(0.25, 0.0);
  EXPECT_DOUBLE_EQ(slow.burst(), 1.0);
  EXPECT_TRUE(slow.try_acquire(0.0));
  double retry_after = 0.0;
  EXPECT_FALSE(slow.try_acquire(0.0, &retry_after));
  EXPECT_NEAR(retry_after, 4.0, 1e-9);
}

TEST(RateLimiter, TokensReportsBalanceWithoutSpending) {
  RateLimiter limiter(10.0, 4.0);
  EXPECT_NEAR(limiter.tokens(0.0), 4.0, 1e-9);
  EXPECT_TRUE(limiter.try_acquire(0.0));
  EXPECT_NEAR(limiter.tokens(0.0), 3.0, 1e-9);
  EXPECT_NEAR(limiter.tokens(0.1), 4.0, 1e-9);  // refilled, still capped
}

TEST(RateLimiter, ConcurrentAcquiresNeverOversellTheBucket) {
  // Frozen clock: exactly `burst` admissions may succeed no matter how
  // many threads race for them.
  RateLimiter limiter(/*qps=*/1.0, /*burst=*/100.0);
  constexpr int kThreads = 8;
  constexpr int kTriesPerThread = 50;
  std::atomic<int> admitted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&limiter, &admitted] {
      for (int i = 0; i < kTriesPerThread; ++i) {
        if (limiter.try_acquire(/*now_seconds=*/0.0)) {
          admitted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(admitted.load(), 100);
}

TEST(RateLimiter, WallClockOverloadAdmitsAtLeastTheBurst) {
  RateLimiter limiter(1000.0, 8.0);
  int admitted = 0;
  for (int i = 0; i < 8; ++i) {
    if (limiter.try_acquire()) ++admitted;
  }
  EXPECT_EQ(admitted, 8);
}

}  // namespace
}  // namespace gosh::net
