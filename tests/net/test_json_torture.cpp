// net::json under torture: 10k generated cases. Part one builds random
// documents and asserts dump -> parse -> dump is a fixed point (and the
// reparsed tree is structurally identical). Part two mutates valid
// serializations (truncate / flip / insert / delete bytes) and asserts the
// strict parser either cleanly rejects or yields a tree whose dump parses
// again — never a crash, which the ASan/UBSan CI leg turns into a hard
// failure. Everything is seeded, so a failure reproduces.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "gosh/net/json.hpp"

namespace gosh::net::json {
namespace {

constexpr int kRoundTripCases = 3000;
constexpr int kMutationCases = 7000;

class DocumentGenerator {
 public:
  explicit DocumentGenerator(std::uint64_t seed) : rng_(seed) {}

  Value document() { return value(/*depth=*/0); }

 private:
  Value value(int depth) {
    // Deeper nodes lean scalar so documents stay small and bounded.
    const int kinds = depth >= 5 ? 4 : 6;
    switch (pick(kinds)) {
      case 0:
        return Value();
      case 1:
        return Value(pick(2) == 0);
      case 2:
        return number();
      case 3:
        return Value(string());
      case 4: {
        Value array = Value::array();
        const int n = pick(depth == 0 ? 8 : 4);
        for (int i = 0; i < n; ++i) array.push_back(value(depth + 1));
        return array;
      }
      default: {
        Value object = Value::object();
        const int n = pick(depth == 0 ? 8 : 4);
        for (int i = 0; i < n; ++i) object.set(string(), value(depth + 1));
        return object;
      }
    }
  }

  Value number() {
    switch (pick(4)) {
      case 0:
        return Value(static_cast<double>(static_cast<std::int64_t>(rng_()) %
                                         2000001 - 1000000));
      case 1:
        return Value(std::uniform_real_distribution<double>(-1e6, 1e6)(rng_));
      case 2:
        // Extremes of the finite range; shortest-round-trip must hold.
        return Value(std::uniform_real_distribution<double>(-1e-300,
                                                            1e-300)(rng_));
      default:
        return Value(static_cast<double>(rng_() >> pick(40)));
    }
  }

  std::string string() {
    std::string out;
    const int n = pick(12);
    for (int i = 0; i < n; ++i) {
      switch (pick(6)) {
        case 0:
          out += static_cast<char>('a' + pick(26));
          break;
        case 1:  // characters the escaper must handle
          out += "\"\\\n\r\t\b\f"[pick(7)];
          break;
        case 2:  // raw control character
          out += static_cast<char>(pick(0x20));
          break;
        case 3:  // 2-byte UTF-8 (U+00E9)
          out += "\xc3\xa9";
          break;
        case 4:  // 4-byte UTF-8 (U+1F600)
          out += "\xf0\x9f\x98\x80";
          break;
        default:
          out += static_cast<char>(' ' + pick(95));
          break;
      }
    }
    return out;
  }

  int pick(int n) { return static_cast<int>(rng_() % static_cast<unsigned>(n)); }

  std::mt19937_64 rng_;
};

void expect_same_tree(const Value& a, const Value& b, const std::string& at) {
  ASSERT_EQ(static_cast<int>(a.type()), static_cast<int>(b.type())) << at;
  switch (a.type()) {
    case Value::Type::kNull:
      break;
    case Value::Type::kBool:
      EXPECT_EQ(a.as_bool(), b.as_bool()) << at;
      break;
    case Value::Type::kNumber:
      EXPECT_EQ(a.as_number(), b.as_number()) << at;
      break;
    case Value::Type::kString:
      EXPECT_EQ(a.as_string(), b.as_string()) << at;
      break;
    case Value::Type::kArray:
      ASSERT_EQ(a.size(), b.size()) << at;
      for (std::size_t i = 0; i < a.size(); ++i) {
        expect_same_tree(a[i], b[i], at + "[" + std::to_string(i) + "]");
      }
      break;
    case Value::Type::kObject:
      ASSERT_EQ(a.members().size(), b.members().size()) << at;
      for (std::size_t i = 0; i < a.members().size(); ++i) {
        EXPECT_EQ(a.members()[i].first, b.members()[i].first) << at;
        expect_same_tree(a.members()[i].second, b.members()[i].second,
                         at + "." + a.members()[i].first);
      }
      break;
  }
}

TEST(NetJsonTorture, RandomDocumentsRoundTripExactly) {
  DocumentGenerator gen(20260807);
  for (int i = 0; i < kRoundTripCases; ++i) {
    const Value doc = gen.document();
    const std::string text = doc.dump();
    auto parsed = Value::parse(text);
    ASSERT_TRUE(parsed.ok())
        << "case " << i << ": " << parsed.status().to_string()
        << "\ninput: " << text;
    expect_same_tree(doc, parsed.value(), "case " + std::to_string(i));
    // dump must be a fixed point: reserializing the parse is byte-equal.
    EXPECT_EQ(parsed.value().dump(), text) << "case " << i;
  }
}

TEST(NetJsonTorture, MutatedDocumentsNeverCrashTheStrictParser) {
  DocumentGenerator gen(771020);
  std::mt19937_64 rng(424243);
  const auto pick = [&rng](std::size_t n) {
    return static_cast<std::size_t>(rng() % n);
  };
  int rejected = 0;
  for (int i = 0; i < kMutationCases; ++i) {
    std::string text = gen.document().dump();
    switch (pick(4)) {
      case 0:  // truncate
        text.resize(pick(text.size() + 1));
        break;
      case 1:  // flip one byte to an arbitrary value
        if (!text.empty()) {
          text[pick(text.size())] = static_cast<char>(rng() % 256);
        }
        break;
      case 2:  // delete one byte
        if (!text.empty()) text.erase(pick(text.size()), 1);
        break;
      default:  // insert one arbitrary byte
        text.insert(pick(text.size() + 1), 1, static_cast<char>(rng() % 256));
        break;
    }
    auto parsed = Value::parse(text);
    if (!parsed.ok()) {
      ++rejected;
      continue;
    }
    // A mutation can still be valid JSON (e.g. flipping a digit); the
    // result must then survive its own round trip.
    const std::string redump = parsed.value().dump();
    auto reparsed = Value::parse(redump);
    ASSERT_TRUE(reparsed.ok())
        << "case " << i << " accepted input whose dump does not reparse\n"
        << "input:  " << text << "\nredump: " << redump;
  }
  // The strict parser must reject the overwhelming majority of mutations;
  // a permissive regression (e.g. accepting trailing garbage) craters this.
  EXPECT_GT(rejected, kMutationCases / 2) << rejected;
}

TEST(NetJsonTorture, HandWrittenMalformedCorpusIsRejected) {
  const char* const kMalformed[] = {
      "",        " ",        "{",         "}",          "[",       "]",
      "{]",      "[}",       "[1,",       "[1,]",       "{\"a\":}",
      "{\"a\"}", "{\"a\":1", "{\"a\":1,}", "{1:2}",     "tru",
      "truee",   "nullx",    "+1",        "01",         "1.",      ".5",
      "-",       "1e",       "1e+",       "0x10",       "NaN",     "Infinity",
      "\"",      "\"\\\"",   "\"\\q\"",   "\"\\u12\"",  "\"\\ud83d\"",
      "\"\x01\"", "'a'",     "[1] []",    "[1]x",       "{} {}",   "\"a\" \"b\"",
  };
  for (const char* text : kMalformed) {
    EXPECT_FALSE(Value::parse(text).ok()) << "accepted: " << text;
  }
}

TEST(NetJsonTorture, NestingDepthIsCappedNotStackBound) {
  // Exactly at the cap parses; one past the cap is a clean error (and a
  // pathological depth must not touch the stack guard at all).
  const auto nested = [](std::size_t depth) {
    return std::string(depth, '[') + std::string(depth, ']');
  };
  EXPECT_TRUE(Value::parse(nested(64), /*max_depth=*/64).ok());
  EXPECT_FALSE(Value::parse(nested(65), /*max_depth=*/64).ok());
  EXPECT_FALSE(Value::parse(nested(100000)).ok());
}

}  // namespace
}  // namespace gosh::net::json
