// QueryHandler — the JSON face of QueryService, tested without a socket:
// strict body parsing into the request model, response rendering, and the
// Status -> HTTP mapping, against a fake service that records what it was
// asked.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "gosh/net/query_handler.hpp"

namespace gosh::net {
namespace {

/// Answers every query with one fixed neighbor and records the request so
/// the tests can assert exactly what crossed the parse boundary.
class FakeService final : public serving::QueryService {
 public:
  api::Result<serving::QueryResponse> serve(
      const serving::QueryRequest& request) override {
    last = &request;
    last_k = request.k;
    last_ef = request.ef;
    last_metric = request.metric;
    last_aggregate = request.aggregate;
    if (!next_status.is_ok()) return next_status;
    serving::QueryResponse response;
    response.results.resize(request.queries.size(),
                            {serving::Neighbor{3, 0.5f}});
    response.seconds = 0.25;
    return response;
  }
  vid_t rows() const noexcept override { return 100; }
  unsigned dim() const noexcept override { return 4; }
  serving::Metric default_metric() const noexcept override {
    return serving::Metric::kCosine;
  }
  std::string_view strategy_name() const noexcept override { return "fake"; }
  api::Result<std::vector<float>> row_vector(vid_t) const override {
    return std::vector<float>(dim(), 0.0f);
  }

  const serving::QueryRequest* last = nullptr;
  unsigned last_k = 0;
  unsigned last_ef = 0;
  std::optional<serving::Metric> last_metric;
  serving::Aggregate last_aggregate = serving::Aggregate::kMax;
  api::Status next_status = api::Status::ok();
};

HttpRequest post(std::string body) {
  HttpRequest request;
  request.method = "POST";
  request.target = "/v1/query";
  request.version = "HTTP/1.1";
  request.body = std::move(body);
  return request;
}

TEST(QueryHandler, ServesAVertexQueryEndToEnd) {
  FakeService service;
  QueryHandler handler(service);
  const HttpResponse response = handler.handle(
      post(R"({"queries": [{"vertex": 17}], "k": 5})"));
  EXPECT_EQ(response.status, 200);
  ASSERT_NE(service.last, nullptr);
  EXPECT_EQ(service.last_k, 5u);
  EXPECT_EQ(response.body,
            R"({"results":[[{"id":3,"score":0.5}]],"seconds":0.25})");
  ASSERT_NE(response.header("Content-Type"), nullptr);
  EXPECT_EQ(*response.header("Content-Type"), "application/json");
}

TEST(QueryHandler, ParsesEveryQueryShapeAndOverride) {
  FakeService service;
  QueryHandler handler(service);
  auto body = json::Value::parse(R"({
    "queries": [
      {"vertex": 9},
      {"vector": [1, 2, 3, 4]},
      {"vectors": [[1, 0, 0, 0], [0, 1, 0, 0]]}
    ],
    "k": 3, "ef": 128, "metric": "l2", "aggregate": "mean",
    "filter": {"begin": 10, "end": 20}
  })");
  ASSERT_TRUE(body.ok()) << body.status().to_string();
  auto parsed = handler.parse_body(body.value());
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  const serving::QueryRequest& request = parsed.value();
  ASSERT_EQ(request.queries.size(), 3u);
  EXPECT_TRUE(request.queries[0].is_vertex);
  EXPECT_EQ(request.queries[0].vertex_id, 9u);
  EXPECT_EQ(request.queries[1].vector_count, 1u);
  EXPECT_EQ(request.queries[1].vectors.size(), 4u);
  EXPECT_EQ(request.queries[2].vector_count, 2u);
  EXPECT_EQ(request.queries[2].vectors.size(), 8u);
  EXPECT_EQ(request.k, 3u);
  EXPECT_EQ(request.ef, 128u);
  ASSERT_TRUE(request.metric.has_value());
  EXPECT_EQ(*request.metric, serving::Metric::kL2);
  EXPECT_EQ(request.aggregate, serving::Aggregate::kMean);
  ASSERT_TRUE(static_cast<bool>(request.filter));
  EXPECT_FALSE(request.filter(9));
  EXPECT_TRUE(request.filter(10));
  EXPECT_TRUE(request.filter(19));
  EXPECT_FALSE(request.filter(20));
}

TEST(QueryHandler, RejectsMalformedBodiesWithStructured400s) {
  FakeService service;
  QueryHandler handler(service);
  struct Case {
    const char* body;
    const char* code;
  };
  const Case cases[] = {
      {"{not json", "bad_json"},
      {R"("a string")", "bad_request"},
      {R"({})", "bad_request"},                               // no queries
      {R"({"queries": []})", "bad_request"},                  // empty batch
      {R"({"quieres": [{"vertex": 1}]})", "bad_request"},     // typo'd key
      {R"({"queries": [{"vertex": 1}], "x": 1})", "bad_request"},
      {R"({"queries": [{}]})", "bad_request"},                // no shape
      {R"({"queries": [{"vertex": 1, "vector": [1,2,3,4]}]})",
       "bad_request"},                                        // two shapes
      {R"({"queries": [{"vertex": -1}]})", "bad_request"},
      {R"({"queries": [{"vertex": 1.5}]})", "bad_request"},
      {R"({"queries": [{"vector": [1, 2]}]})", "bad_request"},  // dim 4
      {R"({"queries": [{"vector": [1, "x", 3, 4]}]})", "bad_request"},
      {R"({"queries": [{"vectors": []}]})", "bad_request"},
      {R"({"queries": [{"vertex": 1, "why": 2}]})", "bad_request"},
      {R"({"queries": [{"vertex": 1}], "k": "ten"})", "bad_request"},
      {R"({"queries": [{"vertex": 1}], "metric": "hamming"})", "bad_request"},
      {R"({"queries": [{"vertex": 1}], "filter": {"begin": 5, "end": 5}})",
       "bad_request"},
      {R"({"queries": [{"vertex": 1}], "filter": {"begin": 0}})",
       "bad_request"},
  };
  for (const Case& c : cases) {
    const HttpResponse response = handler.handle(post(c.body));
    EXPECT_EQ(response.status, 400) << c.body;
    EXPECT_NE(response.body.find("\"error\""), std::string::npos) << c.body;
    EXPECT_NE(response.body.find(c.code), std::string::npos)
        << c.body << " -> " << response.body;
  }
  // None of those may have reached the service.
  EXPECT_EQ(service.last, nullptr);
}

TEST(QueryHandler, MapsServiceStatusesToHttpStatuses) {
  EXPECT_EQ(QueryHandler::http_status(
                api::Status::invalid_argument("bad k")),
            400);
  EXPECT_EQ(QueryHandler::http_status(api::Status::not_found("no row")), 404);
  EXPECT_EQ(QueryHandler::http_status(api::Status::internal("scan died")),
            500);

  FakeService service;
  QueryHandler handler(service);
  service.next_status = api::Status::invalid_argument("k too large");
  HttpResponse response =
      handler.handle(post(R"({"queries": [{"vertex": 1}]})"));
  EXPECT_EQ(response.status, 400);
  EXPECT_NE(response.body.find("k too large"), std::string::npos);

  service.next_status = api::Status::internal("scan died");
  response = handler.handle(post(R"({"queries": [{"vertex": 1}]})"));
  EXPECT_EQ(response.status, 500);
}

TEST(QueryHandler, RendersRankedListsInRequestOrder) {
  serving::QueryResponse response;
  response.results = {{{7, 0.75f}, {2, 0.5f}}, {}};
  response.seconds = 0.125;
  EXPECT_EQ(QueryHandler::render(response).dump(),
            R"({"results":[[{"id":7,"score":0.75},{"id":2,"score":0.5}],[]],)"
            R"("seconds":0.125})");
}

}  // namespace
}  // namespace gosh::net
