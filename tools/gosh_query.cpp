// gosh_query — the serving-side CLI: top-k nearest neighbors out of a
// GSHS embedding store written by gosh_embed (--format store), driven
// entirely through the gosh::serving service API.
//
//   gosh_query --store emb.store --build-index             # offline HNSW
//   gosh_query --store emb.store --queries q.txt --k 10    # serve a file
//   echo 17 | gosh_query --store emb.store --queries -     # ... or stdin
//   gosh_query --store emb.store --strategy router --queries q.txt
//   gosh_query --store emb.store --eval 100 --k 10         # recall@k
//
// Query input: one query per line. A line is one or more ';'-separated
// segments; each segment is either a single vertex id (the stored row
// becomes the query vector) or dim() whitespace-separated floats. One
// segment = a plain query (a vertex query excludes its own row from the
// answer); several segments = ONE multi-vector query whose candidate
// scores combine under --aggregate (max|mean).
//
// Modes (exactly one):
//   --build-index       build the HNSW index and write it beside the store
//   --queries FILE|-    answer top-k for each input line (a FILE is served
//                       as one batched request; stdin streams per line)
//   --eval N            recall@k of --strategy vs the exact scan on N
//                       sampled rows, plus q/s and p50/p99 latency
// Strategy & request shape:
//   --strategy S        exact|hnsw|batched|router|auto (default auto =
//                       hnsw when the index file exists, else exact)
//   --k K               neighbors per query (default 10)
//   --metric M          cosine|dot|l2 (default cosine)
//   --aggregate A       multi-vector combine rule: max|mean (default max)
//   --filter LO:HI      only ids in [LO, HI) may appear in answers
//   --batch B           max requests coalesced per scan (batched strategy)
//   --ef EF             HNSW search beam width (default 64)
//   --threads T         scan parallelism (default: all workers)
//   --block-rows N      rows per scan block (default 2048)
// Build / files / io:
//   --index PATH        index file (default: STORE.hnsw)
//   --M / --ef-construction   HNSW build shape (default 16 / 200)
//   --seed S            build + --eval sampling seed (default 42)
//   --recall-floor F    exit nonzero if --eval recall@k < F (CI hook)
//   --no-verify         skip the store checksum pass at open
//   --options FILE      key=value ServeOptions file; flags override it
//   --metrics           dump the MetricsRegistry text exposition at exit
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "gosh/api/api.hpp"

namespace {

using namespace gosh;

void usage() {
  std::printf(
      "usage: gosh_query --store PATH (--build-index | --queries FILE|- |\n"
      "                  --eval N) [serving flags] [tool flags]\n"
      "serving flags (shared with gosh_serve):\n"
      "%s"
      "tool flags:\n"
      "  --threads T            scan parallelism (default: all workers)\n"
      "  --M M / --ef-construction EC   HNSW build shape (default 16 / 200)\n"
      "  --seed S               build + --eval sampling seed (default 42)\n"
      "  --recall-floor F       exit nonzero if --eval recall@k < F\n"
      "  --metrics              dump the metrics exposition at exit\n",
      api::serve_flags_usage());
}

int fail(const api::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
  return 1;
}

void print_neighbors(const std::string& label,
                     const std::vector<query::Neighbor>& neighbors) {
  std::printf("%s:", label.c_str());
  for (const query::Neighbor& n : neighbors) {
    std::printf(" %u:%.4f", n.id, n.score);
  }
  std::printf("\n");
}

/// Parses one ';'-separated segment: a bare vertex id or dim floats. A
/// lone token is parsed as an exact integer (not through float, which
/// would silently misroute ids above 2^24 on big stores).
bool parse_segment(const std::string& segment, serving::QueryService& service,
                   std::vector<float>& vector, vid_t& vertex,
                   bool& is_vertex) {
  std::istringstream in(segment);
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) tokens.push_back(token);
  if (tokens.size() == 1) {
    auto id = api::parse_unsigned(tokens[0]);
    if (!id.ok() || id.value() > std::numeric_limits<vid_t>::max())
      return false;
    vertex = static_cast<vid_t>(id.value());
    is_vertex = true;
    return true;
  }
  if (tokens.size() != service.dim()) return false;
  std::vector<float> values;
  values.reserve(tokens.size());
  for (const std::string& t : tokens) {
    auto value = api::parse_real(t);
    if (!value.ok()) return false;
    values.push_back(static_cast<float>(value.value()));
  }
  vector = std::move(values);
  is_vertex = false;
  return true;
}

/// Parses one query line into a serving::Query (resolving vertex segments
/// of multi-vector lines through the service). Returns false with a
/// warning on malformed lines so one typo doesn't kill a stream.
bool parse_query_line(const std::string& line, std::size_t line_number,
                      serving::QueryService& service, serving::Query& out,
                      std::string& label) {
  std::vector<std::string> segments;
  std::size_t begin = 0;
  while (begin <= line.size()) {
    const std::size_t semi = line.find(';', begin);
    const std::size_t end = semi == std::string::npos ? line.size() : semi;
    segments.push_back(line.substr(begin, end - begin));
    if (semi == std::string::npos) break;
    begin = semi + 1;
  }

  const auto warn = [&line_number, &service](const char* what) {
    std::fprintf(stderr,
                 "warning: line %zu: %s (expected a vertex id or %u floats "
                 "per ';' segment)\n",
                 line_number, what, service.dim());
    return false;
  };

  if (segments.size() == 1) {
    std::vector<float> vector;
    vid_t vertex = 0;
    bool is_vertex = false;
    if (!parse_segment(segments[0], service, vector, vertex, is_vertex))
      return warn("malformed query");
    if (is_vertex) {
      if (vertex >= service.rows()) return warn("vertex out of range");
      out = serving::Query::vertex(vertex);
      label = "vertex " + std::to_string(vertex);
    } else {
      out = serving::Query::vector(std::move(vector));
      label = "query " + std::to_string(line_number);
    }
    return true;
  }

  // Multi-vector: every segment becomes one vector of the joint query.
  std::vector<float> flat;
  for (const std::string& segment : segments) {
    std::vector<float> vector;
    vid_t vertex = 0;
    bool is_vertex = false;
    if (!parse_segment(segment, service, vector, vertex, is_vertex))
      return warn("malformed multi-vector segment");
    if (is_vertex) {
      auto row = service.row_vector(vertex);
      if (!row.ok()) return warn("vertex out of range");
      vector = std::move(row).value();
    }
    flat.insert(flat.end(), vector.begin(), vector.end());
  }
  out = serving::Query::multi(std::move(flat), segments.size());
  label = "multi " + std::to_string(line_number) + " (" +
          std::to_string(segments.size()) + " vectors)";
  return true;
}

int serve_queries(serving::QueryService& service,
                  const serving::ServeOptions& options) {
  // A file is batched into ONE request (the shape the batched strategy
  // coalesces and every strategy answers in one pass); stdin streams —
  // each line is answered as it arrives, so a long-lived pipe sees its
  // results immediately.
  const bool streaming = options.queries_path == "-";
  std::ifstream file;
  std::istream* in = &std::cin;
  if (!streaming) {
    file.open(options.queries_path);
    if (!file)
      return fail(api::Status::io_error("cannot open " + options.queries_path));
    in = &file;
  }

  serving::QueryRequest request;
  request.k = options.k;
  request.aggregate = options.aggregate_mode();
  request.filter = options.row_filter();
  std::vector<std::string> labels;
  std::size_t served = 0;
  double seconds = 0.0;
  std::string line;
  std::size_t line_number = 0;
  int bad_lines = 0;
  while (std::getline(*in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    serving::Query query;
    std::string label;
    if (!parse_query_line(line, line_number, service, query, label)) {
      ++bad_lines;
      continue;
    }
    request.queries.push_back(std::move(query));
    labels.push_back(std::move(label));
    if (streaming) {
      auto response = service.serve(request);
      if (!response.ok()) return fail(response.status());
      print_neighbors(labels.front(), response.value().results.front());
      seconds += response.value().seconds;
      ++served;
      request.queries.clear();
      labels.clear();
    }
  }

  if (!streaming) {
    auto response = service.serve(request);
    if (!response.ok()) return fail(response.status());
    for (std::size_t q = 0; q < labels.size(); ++q) {
      print_neighbors(labels[q], response.value().results[q]);
    }
    seconds = response.value().seconds;
    served = labels.size();
  }
  std::printf("served %zu queries in %.3f ms (strategy %s)\n", served,
              1e3 * seconds, std::string(service.strategy_name()).c_str());
  return bad_lines > 0 ? 2 : 0;
}

int run_eval(serving::QueryService& candidate,
             const serving::ServeOptions& options,
             serving::MetricsRegistry& metrics) {
  if (candidate.rows() == 0) {
    return fail(api::Status::invalid_argument("store is empty"));
  }
  if (candidate.strategy_name() == "exact") {
    // Exact-vs-exact recall is vacuously 1.0 — refuse rather than let a
    // CI recall gate pass without the index it meant to measure.
    return fail(api::Status::invalid_argument(
        "--eval measures an approximate strategy against the exact scan; "
        "strategy resolved to 'exact' (run --build-index first, or pass "
        "--strategy hnsw)"));
  }
  // Ground truth comes from the registry too — the exact scan over the
  // same store and metric.
  serving::ServeOptions exact_options = options;
  exact_options.strategy = "exact";
  auto truth = serving::make_service(exact_options, &metrics);
  if (!truth.ok()) return fail(truth.status());

  const std::size_t samples =
      std::min<std::size_t>(options.eval_samples, candidate.rows());
  Rng rng(options.seed);
  std::vector<vid_t> probes(samples);
  for (vid_t& p : probes) p = rng.next_vertex(candidate.rows());

  // One pass per service: recall compares the answers, the histograms
  // collect per-request service-side timings for the p50/p99 report.
  serving::Histogram& exact_timed = metrics.histogram(
      "gosh_eval_exact_seconds", "Per-request exact latency during --eval");
  serving::Histogram& candidate_timed =
      metrics.histogram("gosh_eval_candidate_seconds",
                        "Per-request candidate latency during --eval");

  double hits = 0.0, denom = 0.0;
  for (const vid_t probe : probes) {
    auto exact =
        truth.value()->serve(serving::QueryRequest::for_vertex(probe, options.k));
    if (!exact.ok()) return fail(exact.status());
    exact_timed.observe(exact.value().seconds);
    auto approx =
        candidate.serve(serving::QueryRequest::for_vertex(probe, options.k));
    if (!approx.ok()) return fail(approx.status());
    candidate_timed.observe(approx.value().seconds);

    // The ground truth may hold fewer than k rows (tiny store); recall is
    // measured against what the exact scan can actually return.
    const auto& truth_list = exact.value().results.front();
    const auto& approx_list = approx.value().results.front();
    denom += static_cast<double>(truth_list.size());
    for (const query::Neighbor& t : truth_list) {
      for (const query::Neighbor& got : approx_list) {
        if (t.id == got.id) {
          hits += 1.0;
          break;
        }
      }
    }
  }
  const double recall = denom > 0 ? hits / denom : 0.0;

  std::printf("recall@%u: %.4f over %zu sampled rows\n", options.k, recall,
              samples);
  const auto report = [](const char* name, const serving::Histogram& h) {
    const double total = h.sum();
    std::printf("%s: %.1f q/s   p50 %.3f ms   p99 %.3f ms\n", name,
                h.count() / (total > 0 ? total : 1e-9),
                1e3 * h.quantile(0.5), 1e3 * h.quantile(0.99));
  };
  report("exact", exact_timed);
  report("candidate", candidate_timed);

  if (recall < options.recall_floor) {
    std::fprintf(stderr, "error: recall %.4f below required floor %.4f\n",
                 recall, options.recall_floor);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = serving::ServeOptions::from_args(argc, argv);
  if (!parsed.ok()) {
    fail(parsed.status());
    usage();
    return 1;
  }
  serving::ServeOptions options = std::move(parsed).value();
  if (options.show_help) {
    usage();
    return 0;
  }

  const int modes = (options.build_index ? 1 : 0) +
                    (options.queries_path.empty() ? 0 : 1) +
                    (options.eval_samples > 0 ? 1 : 0);
  if (modes != 1) {
    std::fprintf(stderr,
                 "error: pick exactly one of --build-index, --queries, "
                 "--eval\n");
    usage();
    return 1;
  }

  if (options.build_index) {
    auto report = serving::build_index(options);
    if (!report.ok()) return fail(report.status());
    std::printf("built HNSW (M=%u, ef_construction=%u, max level %d) "
                "in %.2f s\n",
                report.value().M, report.value().ef_construction,
                report.value().max_level, report.value().seconds);
    std::printf("wrote %s\n", report.value().path.c_str());
    return 0;
  }

  serving::MetricsRegistry& metrics = serving::MetricsRegistry::global();
  auto service = serving::make_service(options, &metrics);
  if (!service.ok()) return fail(service.status());
  api::print_service_banner(options, *service.value());

  int exit_code = 0;
  if (options.eval_samples > 0) {
    exit_code = run_eval(*service.value(), options, metrics);
  } else {
    exit_code = serve_queries(*service.value(), options);
  }
  if (options.dump_metrics) {
    std::printf("\n%s", metrics.expose().c_str());
  }
  return exit_code;
}
