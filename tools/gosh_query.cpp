// gosh_query — the serving-side CLI: top-k nearest neighbors out of a
// GSHS embedding store written by gosh_embed (--format store).
//
//   gosh_query --store emb.store --build-index          # offline HNSW build
//   gosh_query --store emb.store --queries q.txt --k 10 # serve from a file
//   echo 17 | gosh_query --store emb.store --queries -  # ... or stdin
//   gosh_query --store emb.store --eval 100 --k 10      # HNSW recall@k
//
// Query input: one query per line — either a single vertex id (the stored
// row becomes the query, the row itself is excluded from its answer) or
// dim() whitespace-separated floats (a raw vector).
//
// Modes (exactly one):
//   --build-index       build the HNSW index and write it beside the store
//   --queries FILE|-    answer top-k for each input line
//   --eval N            recall@k of HNSW vs the exact scan on N sampled
//                       rows, plus queries/sec for both strategies
// Options:
//   --index PATH        index file (default: STORE.hnsw)
//   --k K               neighbors per query (default 10)
//   --metric M          cosine|dot|l2 (default cosine)
//   --strategy S        exact|hnsw (default exact; hnsw needs an index)
//   --batch B           serve --queries through a BatchQueue coalescing up
//                       to B requests per scan (default: direct calls)
//   --threads T         scan parallelism (default: all workers)
//   --M / --ef-construction   HNSW build shape (default 16 / 200)
//   --ef                HNSW search beam width (default 64)
//   --seed S            sampling seed for --eval (default 42)
//   --recall-floor F    exit nonzero if --eval recall@k < F (CI hook)
//   --no-verify         skip the store checksum pass at open
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "gosh/api/api.hpp"

namespace {

using namespace gosh;

void usage() {
  std::puts(
      "usage: gosh_query --store PATH (--build-index | --queries FILE|- |\n"
      "                  --eval N) [--index PATH] [--k K]\n"
      "                  [--metric cosine|dot|l2] [--strategy exact|hnsw]\n"
      "                  [--batch B] [--threads T] [--M M]\n"
      "                  [--ef-construction EC] [--ef EF] [--seed S]\n"
      "                  [--recall-floor F] [--no-verify]");
}

int fail(const api::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
  return 1;
}

/// "--name value" string lookup; first occurrence wins.
std::string flag_string(int argc, char** argv, std::string_view name,
                        std::string fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (name == argv[i]) return argv[i + 1];
  }
  return fallback;
}

void print_neighbors(const std::string& label,
                     const std::vector<query::Neighbor>& neighbors) {
  std::printf("%s:", label.c_str());
  for (const query::Neighbor& n : neighbors) {
    std::printf(" %u:%.4f", n.id, n.score);
  }
  std::printf("\n");
}

/// Parses one query line: a bare vertex id or dim floats. Returns false
/// (with a message) on malformed lines so one typo doesn't kill a stream.
/// A lone token is parsed as an exact integer (not through float, which
/// would silently misroute ids above 2^24 on big stores).
bool parse_query_line(const std::string& line, const query::QueryEngine& engine,
                      std::vector<float>& vector, vid_t& vertex,
                      bool& is_vertex) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) tokens.push_back(token);
  if (tokens.size() == 1) {
    auto id = api::parse_unsigned(tokens[0]);
    if (!id.ok() || id.value() > std::numeric_limits<vid_t>::max())
      return false;
    vertex = static_cast<vid_t>(id.value());
    is_vertex = true;
    return true;
  }
  if (tokens.size() != engine.dim()) return false;
  std::vector<float> values;
  values.reserve(tokens.size());
  for (const std::string& t : tokens) {
    auto value = api::parse_real(t);
    if (!value.ok()) return false;
    values.push_back(static_cast<float>(value.value()));
  }
  vector = std::move(values);
  is_vertex = false;
  return true;
}

int serve_queries(const query::QueryEngine& engine, const std::string& source,
                  unsigned k, query::Strategy strategy, std::size_t batch) {
  std::ifstream file;
  std::istream* in = &std::cin;
  if (source != "-") {
    file.open(source);
    if (!file) return fail(api::Status::io_error("cannot open " + source));
    in = &file;
  }

  query::QueryCounters counters;
  std::unique_ptr<query::BatchQueue> queue;
  if (batch > 0) {
    // k+1 so vertex queries can drop the probe row itself, matching the
    // direct top_k_vertex path.
    queue = std::make_unique<query::BatchQueue>(
        engine,
        query::BatchQueueOptions{
            .max_batch = batch, .k = k + 1, .strategy = strategy},
        &counters);
  }

  // With a queue, submit everything first so requests actually coalesce;
  // direct mode answers line by line.
  struct InFlight {
    std::string label;
    bool is_vertex;
    vid_t vertex;
    std::future<std::vector<query::Neighbor>> future;
  };
  std::vector<InFlight> in_flight;
  std::string line;
  std::size_t line_number = 0;
  int bad_lines = 0;
  while (std::getline(*in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::vector<float> vector;
    vid_t vertex = 0;
    bool is_vertex = false;
    if (!parse_query_line(line, engine, vector, vertex, is_vertex)) {
      std::fprintf(stderr,
                   "warning: line %zu: expected a vertex id or %u floats\n",
                   line_number, engine.dim());
      ++bad_lines;
      continue;
    }
    std::string label;
    if (is_vertex) {
      if (vertex >= engine.rows()) {
        std::fprintf(stderr, "warning: line %zu: vertex %u out of range\n",
                     line_number, vertex);
        ++bad_lines;
        continue;
      }
      label = "vertex " + std::to_string(vertex);
      const auto row = engine.store().row(vertex);
      vector.assign(row.begin(), row.end());
    } else {
      label = "query " + std::to_string(line_number);
    }

    if (queue != nullptr) {
      in_flight.push_back({std::move(label), is_vertex, vertex,
                           queue->submit(std::move(vector))});
    } else {
      auto result =
          is_vertex ? engine.top_k_vertex(vertex, k, strategy)
                    : engine.top_k(vector, k, strategy);
      if (!result.ok()) return fail(result.status());
      print_neighbors(label, result.value());
    }
  }

  for (InFlight& request : in_flight) {
    try {
      std::vector<query::Neighbor> neighbors = request.future.get();
      if (request.is_vertex) {
        std::erase_if(neighbors, [&request](const query::Neighbor& n) {
          return n.id == request.vertex;
        });
      }
      if (neighbors.size() > k) neighbors.resize(k);
      print_neighbors(request.label, neighbors);
    } catch (const std::exception& error) {
      return fail(api::Status::internal(error.what()));
    }
  }
  if (queue != nullptr) {
    queue->stop();
    std::printf(
        "served %llu queries in %llu batches (mean batch %.1f, "
        "latency mean %.3f ms / max %.3f ms)\n",
        static_cast<unsigned long long>(counters.queries()),
        static_cast<unsigned long long>(counters.batches()),
        counters.mean_batch_size(), 1e3 * counters.mean_latency_seconds(),
        1e3 * counters.max_latency_seconds());
  }
  return bad_lines > 0 ? 2 : 0;
}

int run_eval(const query::QueryEngine& engine, std::size_t samples,
             unsigned k, std::uint64_t seed, double recall_floor) {
  if (!engine.has_index()) {
    return fail(api::Status::invalid_argument(
        "--eval needs the HNSW index (run --build-index first)"));
  }
  if (engine.rows() == 0) {
    return fail(api::Status::invalid_argument("store is empty"));
  }
  samples = std::min<std::size_t>(samples, engine.rows());

  Rng rng(seed);
  std::vector<vid_t> probes(samples);
  for (vid_t& p : probes) p = rng.next_vertex(engine.rows());

  double hits = 0.0, denom = 0.0;
  WallTimer exact_timer, hnsw_timer;
  double exact_seconds = 0.0, hnsw_seconds = 0.0;
  for (const vid_t probe : probes) {
    exact_timer.reset();
    auto exact = engine.top_k_vertex(probe, k, query::Strategy::kExact);
    exact_seconds += exact_timer.seconds();
    if (!exact.ok()) return fail(exact.status());
    // The ground truth may hold fewer than k rows (tiny store); recall is
    // measured against what the exact scan can actually return.
    denom += static_cast<double>(exact.value().size());

    hnsw_timer.reset();
    auto approx = engine.top_k_vertex(probe, k, query::Strategy::kHnsw);
    hnsw_seconds += hnsw_timer.seconds();
    if (!approx.ok()) return fail(approx.status());

    for (const query::Neighbor& truth : exact.value()) {
      for (const query::Neighbor& got : approx.value()) {
        if (truth.id == got.id) {
          hits += 1.0;
          break;
        }
      }
    }
  }
  const double recall = denom > 0 ? hits / denom : 0.0;
  std::printf("recall@%u: %.4f over %zu sampled rows\n", k, recall, samples);
  std::printf("exact: %.1f q/s   hnsw: %.1f q/s\n",
              samples / (exact_seconds > 0 ? exact_seconds : 1e-9),
              samples / (hnsw_seconds > 0 ? hnsw_seconds : 1e-9));
  if (recall < recall_floor) {
    std::fprintf(stderr, "error: recall %.4f below required floor %.4f\n",
                 recall, recall_floor);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      usage();
      return 0;
    }
  }

  const std::string store_path = flag_string(argc, argv, "--store", "");
  if (store_path.empty()) {
    usage();
    return 1;
  }
  const bool build_index = api::flag_present(argc, argv, "--build-index");
  const std::string queries = flag_string(argc, argv, "--queries", "");
  const auto eval_samples = static_cast<std::size_t>(
      api::require_flag_unsigned(argc, argv, "--eval", 0));
  const int modes = (build_index ? 1 : 0) + (queries.empty() ? 0 : 1) +
                    (eval_samples > 0 ? 1 : 0);
  if (modes != 1) {
    std::fprintf(stderr,
                 "error: pick exactly one of --build-index, --queries, "
                 "--eval\n");
    usage();
    return 1;
  }

  auto metric =
      query::parse_metric(flag_string(argc, argv, "--metric", "cosine"));
  if (!metric.ok()) return fail(metric.status());
  auto strategy =
      query::parse_strategy(flag_string(argc, argv, "--strategy", "exact"));
  if (!strategy.ok()) return fail(strategy.status());

  const auto k = static_cast<unsigned>(
      api::require_flag_unsigned(argc, argv, "--k", 10));
  const auto threads = static_cast<unsigned>(
      api::require_flag_unsigned(argc, argv, "--threads", 0));
  const auto batch = static_cast<std::size_t>(
      api::require_flag_unsigned(argc, argv, "--batch", 0));
  const auto hnsw_m =
      static_cast<unsigned>(api::require_flag_unsigned(argc, argv, "--M", 16));
  const auto ef_construction = static_cast<unsigned>(
      api::require_flag_unsigned(argc, argv, "--ef-construction", 200));
  const auto ef = static_cast<unsigned>(
      api::require_flag_unsigned(argc, argv, "--ef", 64));
  const auto seed = api::require_flag_unsigned(argc, argv, "--seed", 42);
  const std::string index_path = flag_string(
      argc, argv, "--index", query::HnswIndex::default_path(store_path));

  store::OpenOptions open_options;
  open_options.verify_checksums = !api::flag_present(argc, argv, "--no-verify");
  auto opened = store::EmbeddingStore::open(store_path, open_options);
  if (!opened.ok()) return fail(opened.status());

  query::QueryEngineOptions engine_options;
  engine_options.metric = metric.value();
  engine_options.threads = threads;
  engine_options.ef_search = ef;
  query::QueryEngine engine(std::move(opened).value(), engine_options);
  std::printf("store %s: %u rows x %u dim, %zu shard%s, metric %s\n",
              store_path.c_str(), engine.rows(), engine.dim(),
              engine.store().num_shards(),
              engine.store().num_shards() == 1 ? "" : "s",
              std::string(query::metric_name(engine.metric())).c_str());

  if (build_index) {
    query::HnswOptions build;
    build.M = hnsw_m;
    build.ef_construction = ef_construction;
    build.seed = seed;
    WallTimer timer;
    // Through the engine so the build reuses its cosine norm cache
    // instead of re-scanning the store.
    if (api::Status status = engine.build_index(build); !status.is_ok()) {
      return fail(status);
    }
    const query::HnswIndex& index = engine.index();
    std::printf("built HNSW (M=%u, ef_construction=%u, max level %d) "
                "in %.2f s\n",
                index.M(), index.ef_construction(), index.max_level(),
                timer.seconds());
    if (api::Status status = index.save(index_path); !status.is_ok()) {
      return fail(status);
    }
    std::printf("wrote %s\n", index_path.c_str());
    return 0;
  }

  // Serving / eval: load the index when the mode needs it.
  if (eval_samples > 0 || strategy.value() == query::Strategy::kHnsw) {
    if (api::Status status = engine.load_index(index_path); !status.is_ok()) {
      return fail(status);
    }
  }

  if (eval_samples > 0) {
    auto floor_text = flag_string(argc, argv, "--recall-floor", "0");
    auto floor = api::parse_real(floor_text);
    if (!floor.ok()) return fail(floor.status());
    return run_eval(engine, eval_samples, k, seed, floor.value());
  }
  return serve_queries(engine, queries, k, strategy.value(), batch);
}
