// gosh_serve — gosh_query with a wire in front: the HTTP/1.1 serving
// front-end over the same store/index/strategy flags.
//
//   gosh_serve --store emb.store --port 8080
//   gosh_serve --store emb.store --strategy hnsw --rate-qps 500 --burst 50
//   gosh_serve --store emb.store --port 0 --port-file /tmp/port
//              --allow-remote-shutdown                  # tests / CI smoke
//
// Endpoints:
//   POST /v1/query        the QueryRequest JSON wire (see net/query_handler)
//   GET  /metrics         Prometheus text exposition (rate-limit exempt)
//   GET  /healthz         JSON liveness: status + ready/rows/dim/shards/
//                         store_generation (exempt). The socket answers
//                         BEFORE the store loads — "status": "loading"
//                         with "ready": false until make_service lands.
//   GET  /readyz          readiness alone: 200 once serving, 503 loading
//   GET  /debug/traces    Chrome trace_event JSON (tracing on; exempt)
//   POST /admin/shutdown  graceful stop; only with --allow-remote-shutdown
//
// Network flags (everything ServeOptions speaks also works — the shared
// flag block below is printed by --help):
//   --host H               bind address (default 127.0.0.1)
//   --port P               TCP port; 0 = ephemeral (default 8080)
//   --threads T            connection worker pool (default 4)
//   --scan-threads T       scan parallelism (ServeOptions "threads")
//   --max-body N           request body cap in bytes -> 413 (default 1 MiB)
//   --max-header N         request head cap in bytes -> 431 (default 16 KiB)
//   --read-timeout-ms MS   per-read deadline -> 408 (default 5000)
//   --keepalive-requests N requests per connection, 0=unlimited
//   --rate-qps Q           global admission rate; 0 = off
//   --burst B              global bucket depth (default max(Q, 1))
//   --conn-rate-qps Q      per-connection admission rate; 0 = off
//   --conn-burst B         per-connection bucket depth
//   --port-file PATH       write the bound port (temp+rename) after listen
//   --allow-remote-shutdown   register POST /admin/shutdown
//
// Observability flags (gosh::trace):
//   --trace-sample-rate R  fraction of requests traced, [0, 1]
//   --trace-slow-ms MS     always trace + warn-log requests slower than MS
//   --trace-out PATH       dump the trace ring as Chrome JSON on shutdown
//                          (alone it implies --trace-sample-rate 1)
//   --access-log           one structured log line per response
//
// Shutdown: SIGINT/SIGTERM (and the admin endpoint) write one byte to a
// self-pipe the main thread blocks on; main — never a connection worker —
// then runs HttpServer::shutdown(), so in-flight requests finish and every
// thread joins before exit.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>

#include <poll.h>
#include <unistd.h>

#include "gosh/api/api.hpp"
#include "gosh/cache/cached_service.hpp"
#include "gosh/store/embedding_store.hpp"

namespace {

using namespace gosh;

/// Self-pipe the signal handler and the admin endpoint both poke; main
/// blocks on the read end. write() is async-signal-safe; nothing else is
/// allowed in the handler.
int g_stop_pipe[2] = {-1, -1};

void request_stop() {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_stop_pipe[1], &byte, 1);
}

void on_signal(int) { request_stop(); }

void usage() {
  std::printf(
      "usage: gosh_serve --store PATH [serving flags] [network flags]\n"
      "serving flags (shared with gosh_query; scan parallelism is\n"
      "--scan-threads here):\n"
      "%s"
      "network flags:\n"
      "  --host H               bind address (default 127.0.0.1)\n"
      "  --port P               TCP port; 0 = ephemeral (default 8080)\n"
      "  --threads T            connection worker pool (default 4)\n"
      "  --max-body N           request body cap in bytes (default 1 MiB)\n"
      "  --max-header N         request head cap in bytes (default 16 KiB)\n"
      "  --read-timeout-ms MS   per-read deadline (default 5000)\n"
      "  --keepalive-requests N per-connection request cap (0 = unlimited)\n"
      "  --rate-qps Q / --burst B             global admission bucket\n"
      "  --conn-rate-qps Q / --conn-burst B   per-connection bucket\n"
      "  --port-file PATH       write the bound port after listen\n"
      "  --allow-remote-shutdown  register POST /admin/shutdown\n"
      "chaos flags (deterministic fault injection, off by default):\n"
      "  --chaos-drop-rate R    drop this fraction of requests cold\n"
      "  --chaos-500-rate R     answer this fraction with a synthetic 500\n"
      "  --chaos-stall R        stall this fraction until the peer gives up\n"
      "  --chaos-delay-ms MS    delay every surviving request by MS\n"
      "  --chaos-seed S         fault-draw RNG seed (default 42)\n"
      "observability flags:\n"
      "  --trace-sample-rate R  fraction of requests traced, in [0, 1]\n"
      "  --trace-slow-ms MS     always trace + log requests slower than MS\n"
      "  --trace-out PATH       dump traces as Chrome JSON on shutdown\n"
      "                         (alone it implies --trace-sample-rate 1)\n"
      "  --access-log           one structured log line per response\n",
      api::serve_flags_usage());
}

int fail(const api::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
  return 1;
}

/// Writes the bound port where a poller (the CI smoke script) watches for
/// it — to a temp name first, renamed into place, so the poller can never
/// read a half-written file.
api::Status write_port_file(const std::string& path, unsigned short port) {
  const std::string temp = path + ".tmp";
  std::FILE* out = std::fopen(temp.c_str(), "w");
  if (out == nullptr) {
    return api::Status::io_error("cannot write port file " + temp);
  }
  std::fprintf(out, "%u\n", static_cast<unsigned>(port));
  if (std::fclose(out) != 0) {
    return api::Status::io_error("short write on port file " + temp);
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    return api::Status::io_error("cannot rename " + temp + " -> " + path +
                                 ": " + std::strerror(errno));
  }
  return api::Status::ok();
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = net::NetOptions::from_args(argc, argv);
  if (!parsed.ok()) {
    fail(parsed.status());
    usage();
    return 1;
  }
  net::NetOptions options = std::move(parsed).value();
  if (options.show_help) {
    usage();
    return 0;
  }
  // --trace-out with no sampling knob would dump an empty ring; alone it
  // means "trace everything I serve".
  if (!options.trace_out.empty() && options.trace_sample_rate == 0.0 &&
      options.trace_slow_ms == 0.0) {
    options.trace_sample_rate = 1.0;
  }
  // The access log emits at Info; the default threshold (Warn) would
  // swallow it.
  if (options.access_log) set_log_level(LogLevel::Info);

  serving::MetricsRegistry& metrics = serving::MetricsRegistry::global();

  if (::pipe(g_stop_pipe) != 0) {
    return fail(api::Status::io_error(std::string("pipe: ") +
                                      std::strerror(errno)));
  }

  // The server comes up BEFORE the store/strategy load: /healthz answers
  // "loading" (liveness) immediately, /readyz and /v1/query hold 503
  // until the service lands — the readiness split a dist-router parent's
  // probe loop keys off when a shard child restarts.
  net::HealthState health;
  std::atomic<net::QueryHandler*> handler_ptr{nullptr};
  net::HttpServer server(options, &metrics);
  server.handle("POST", "/v1/query",
                [&handler_ptr](const net::HttpRequest& r) {
                  net::QueryHandler* handler =
                      handler_ptr.load(std::memory_order_acquire);
                  if (handler == nullptr) {
                    return net::HttpResponse::error(
                        503, "unavailable", "store/strategy still loading");
                  }
                  return handler->handle(r);
                });
  net::add_builtin_routes(server, metrics, server.tracer(), &health);
  if (options.allow_remote_shutdown) {
    // The handler runs on a connection worker, which must NOT call
    // shutdown() itself — it pokes the same pipe the signal handler does
    // and main performs the stop after the response is on the wire.
    server.handle(
        "POST", "/admin/shutdown",
        [](const net::HttpRequest&) {
          request_stop();
          net::HttpResponse response =
              net::HttpResponse::json(200, "{\"status\":\"shutting down\"}");
          response.set_header("Connection", "close");
          return response;
        },
        /*rate_limited=*/false);
  }

  if (api::Status status = server.start(); !status.is_ok()) {
    return fail(status);
  }

  auto service = serving::make_service(options.serve, &metrics);
  if (!service.ok()) {
    server.shutdown();
    return fail(service.status());
  }
  api::print_service_banner(options.serve, *service.value());

  // Publish geometry + readiness, THEN the port file: a poller that read
  // the port can immediately see a ready /healthz, which keeps the
  // existing smoke scripts' "port file means serving" contract.
  health.rows.store(service.value()->rows(), std::memory_order_relaxed);
  health.dim.store(service.value()->dim(), std::memory_order_relaxed);
  {
    std::uint32_t shards = options.serve.shard_count;
    if (shards == 0 && !options.serve.store_path.empty()) {
      auto info = store::EmbeddingStore::probe(options.serve.store_path);
      shards = info.ok() ? info.value().shard_count : 1;
    }
    health.shards.store(shards > 0 ? shards : 1, std::memory_order_relaxed);
  }
  if (!options.serve.store_path.empty()) {
    health.store_generation.store(
        cache::store_fingerprint(options.serve.store_path),
        std::memory_order_relaxed);
  }
  net::QueryHandler handler(*service.value());
  handler_ptr.store(&handler, std::memory_order_release);
  health.ready.store(true, std::memory_order_release);

  if (!options.port_file.empty()) {
    if (api::Status status = write_port_file(options.port_file, server.port());
        !status.is_ok()) {
      server.shutdown();
      return fail(status);
    }
  }
  std::printf("serving on %s:%u (%u workers%s)\n", options.host.c_str(),
              static_cast<unsigned>(server.port()), options.threads,
              options.rate_qps > 0 ? ", rate-limited" : "");
  std::fflush(stdout);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  // Park until a signal or the admin endpoint fires; EINTR just re-polls.
  pollfd pfd{g_stop_pipe[0], POLLIN, 0};
  while (::poll(&pfd, 1, -1) < 0 && errno == EINTR) {
  }

  std::printf("shutting down\n");
  server.shutdown();
  if (!options.trace_out.empty() && server.tracer() != nullptr) {
    if (api::Status status = trace::write_chrome_json(*server.tracer(),
                                                      options.trace_out);
        !status.is_ok()) {
      std::fprintf(stderr, "warning: %s\n", status.to_string().c_str());
    } else {
      std::printf("wrote %s (%llu traces)\n", options.trace_out.c_str(),
                  static_cast<unsigned long long>(server.tracer()->kept()));
    }
  }
  ::close(g_stop_pipe[0]);
  ::close(g_stop_pipe[1]);
  return 0;
}
