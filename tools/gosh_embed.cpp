// gosh_embed — the command-line interface of the library, built entirely on
// the `gosh::api` facade.
//
//   gosh_embed --input edges.txt --output emb.bin [options]
//
// Reads a whitespace edge list (SNAP format, '#' comments), embeds it with
// the selected backend (default: the fits-in-device-memory auto policy),
// and writes the embedding. With --eval, ONE pipeline runs on the 80/20
// train split and is reused for both the link-prediction metric and the
// written output (the output then covers the train split's compacted ids).
//
// Options (also accepted as key=value lines in an --options file):
//   --input PATH        edge-list file (required unless --demo)
//   --demo              use a generated LFR demo graph instead of a file
//   --output PATH       embedding output (default: embedding.bin)
//   --format text|binary|store  output format (default: binary; "store"
//                       writes the mmap-served GSHS layout gosh_query reads)
//   --backend NAME      auto|device|largegraph|multidevice|verse-cpu|
//                       line-device|mile (default: auto)
//   --preset fast|normal|slow|nocoarse   Table 3 preset (default: normal)
//   --dim D             embedding dimension (default: 128)
//   --epochs E          override the preset's epoch budget
//   --device-mib M      emulated device memory (default: 512)
//   --seed S            RNG seed (default: 42)
//   --options FILE      load key=value options; flags override the file
//   --eval              run the 80/20 link-prediction evaluation
//   --verbose           narrate per-level progress
#include <cstdio>
#include <exception>
#include <string>

#include "gosh/api/api.hpp"

namespace {

void usage() {
  std::puts(
      "usage: gosh_embed --input edges.txt [--output emb.bin]\n"
      "                  [--format text|binary|store] [--rows-per-shard N]\n"
      "                  [--backend NAME]\n"
      "                  [--preset fast|normal|slow|nocoarse]\n"
      "                  [--dim D] [--epochs E] [--device-mib M] [--seed S]\n"
      "                  [--options FILE] [--eval] [--verbose] | --demo");
}

int fail(const gosh::api::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gosh;

  auto parsed = api::Options::from_args(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.status().to_string().c_str());
    usage();
    return 1;
  }
  api::Options options = std::move(parsed).value();
  if (options.show_help) {
    usage();
    return 0;
  }
  if (options.input_path.empty() && !options.demo) {
    usage();
    return 1;
  }
  if (options.verbose) set_log_level(LogLevel::Info);

  graph::Graph g;
  if (options.demo) {
    graph::LfrParams params;
    params.average_degree = 12.0;
    params.communities = 64;
    g = graph::lfr_like(1 << 13, params, 7);
    std::printf("demo graph: LFR |V|=%u |E|=%llu\n", g.num_vertices(),
                static_cast<unsigned long long>(g.num_edges_undirected()));
  } else {
    try {
      g = graph::read_edge_list(options.input_path);
    } catch (const std::exception& error) {
      return fail(api::Status::io_error(options.input_path + ": " +
                                        error.what()));
    }
    std::printf("loaded %s: |V|=%u |E|=%llu\n", options.input_path.c_str(),
                g.num_vertices(),
                static_cast<unsigned long long>(g.num_edges_undirected()));
  }

  api::LoggingProgressObserver logger;
  api::ProgressObserver* observer = options.verbose ? &logger : nullptr;

  // One pipeline run, whatever the mode: with --eval it embeds the train
  // split and that same embedding is evaluated AND written (the seed tool
  // used to train twice — once for the metric, once for the output).
  api::EmbedResult result;
  if (options.run_eval) {
    const auto split = graph::split_for_link_prediction(g, {.seed = 1});
    auto embedded = api::embed(split.train, options, observer);
    if (!embedded.ok()) return fail(embedded.status());
    result = std::move(embedded).value();
    const auto report =
        eval::evaluate_link_prediction(result.embedding, split);
    std::printf("link prediction: AUCROC %.2f%% (embedding %.2f s)\n",
                100.0 * report.auc_roc, result.total_seconds);
    std::printf("note: output embeds the 80%% train split "
                "(compacted vertex ids)\n");
  } else {
    auto embedded = api::embed(g, options, observer);
    if (!embedded.ok()) return fail(embedded.status());
    result = std::move(embedded).value();
  }

  std::printf("backend %s: embedded in %.2f s (coarsening %.2f s, "
              "%zu levels)\n",
              result.backend.c_str(), result.total_seconds,
              result.coarsening_seconds, result.levels.size());

  if (api::Status status =
          api::write_embedding(result.embedding, options.output_path,
                               options.output_format, options.rows_per_shard);
      !status.is_ok()) {
    return fail(status);
  }
  std::printf("wrote %s (%s, %u x %u)\n", options.output_path.c_str(),
              options.output_format.c_str(), result.embedding.rows(),
              result.embedding.dim());
  return 0;
}
