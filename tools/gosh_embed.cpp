// gosh_embed — the command-line interface of the library, built entirely on
// the `gosh::api` facade.
//
//   gosh_embed --input edges.txt --output emb.bin [options]
//
// Reads a whitespace edge list (SNAP format, '#' comments), embeds it with
// the selected backend (default: the fits-in-device-memory auto policy),
// and writes the embedding. With --eval, ONE pipeline runs on the 80/20
// train split and is reused for both the link-prediction metric and the
// written output (the output then covers the train split's compacted ids).
//
// Options (also accepted as key=value lines in an --options file):
//   --input PATH        edge-list file (required unless --demo)
//   --demo              use a generated LFR demo graph instead of a file
//   --output PATH       embedding output (default: embedding.bin)
//   --format text|binary|store  output format (default: binary; "store"
//                       writes the mmap-served GSHS layout gosh_query reads)
//   --backend NAME      auto|device|largegraph|multidevice|verse-cpu|
//                       line-device|mile (default: auto)
//   --preset fast|normal|slow|nocoarse   Table 3 preset (default: normal)
//   --dim D             embedding dimension (default: 128)
//   --epochs E          override the preset's epoch budget
//   --device-mib M      emulated device memory (default: 512)
//   --seed S            RNG seed (default: 42)
//   --options FILE      load key=value options; flags override the file
//   --eval              run the 80/20 link-prediction evaluation
//   --verbose           narrate per-level progress
//   --trace-out PATH    profile the run (per-level spans; rotation /
//                       pool-wait / pair-kernel phases on the partitioned
//                       path) and dump Chrome trace_event JSON to PATH
#include <cstdio>
#include <exception>
#include <string>

#include "gosh/api/api.hpp"
#include "gosh/trace/trace.hpp"

namespace {

void usage() {
  std::puts(
      "usage: gosh_embed --input edges.txt [--output emb.bin]\n"
      "                  [--format text|binary|store] [--rows-per-shard N]\n"
      "                  [--backend NAME]\n"
      "                  [--preset fast|normal|slow|nocoarse]\n"
      "                  [--dim D] [--epochs E] [--device-mib M] [--seed S]\n"
      "                  [--options FILE] [--eval] [--verbose]\n"
      "                  [--trace-out trace.json] | --demo");
}

/// Forwards every progress event to the wrapped observer (may be null)
/// and records one "level-N" span per coarsening level into the current
/// trace — the pipeline-shape view gosh_embed --trace-out dumps, on top
/// of the rotation/pool-wait/pair-kernel spans the trainer emits itself.
class TracingProgressObserver : public gosh::api::ProgressObserver {
 public:
  explicit TracingProgressObserver(gosh::api::ProgressObserver* inner)
      : inner_(inner) {}

  void on_pipeline_begin(std::string_view backend,
                         std::size_t num_levels) override {
    if (inner_ != nullptr) inner_->on_pipeline_begin(backend, num_levels);
  }
  void on_level_begin(const gosh::api::LevelInfo& level) override {
    level_begin_ns_ = gosh::trace::now_ns();
    if (inner_ != nullptr) inner_->on_level_begin(level);
  }
  void on_epoch(std::size_t level, unsigned epoch, unsigned total) override {
    if (inner_ != nullptr) inner_->on_epoch(level, epoch, total);
  }
  void on_pair(std::size_t level, unsigned rotation, std::size_t pair,
               std::size_t num_pairs) override {
    if (inner_ != nullptr) inner_->on_pair(level, rotation, pair, num_pairs);
  }
  void on_level_end(const gosh::api::LevelInfo& level,
                    double seconds) override {
    if (gosh::trace::Trace* trace = gosh::trace::current()) {
      trace->record("level-" + std::to_string(level.level), level_begin_ns_,
                    gosh::trace::now_ns(), /*depth=*/1,
                    gosh::trace::thread_ordinal());
    }
    if (inner_ != nullptr) inner_->on_level_end(level, seconds);
  }
  void on_pipeline_end(double total_seconds) override {
    if (inner_ != nullptr) inner_->on_pipeline_end(total_seconds);
  }

 private:
  gosh::api::ProgressObserver* inner_;
  std::uint64_t level_begin_ns_ = 0;
};

int fail(const gosh::api::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gosh;

  auto parsed = api::Options::from_args(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.status().to_string().c_str());
    usage();
    return 1;
  }
  api::Options options = std::move(parsed).value();
  if (options.show_help) {
    usage();
    return 0;
  }
  if (options.input_path.empty() && !options.demo) {
    usage();
    return 1;
  }
  if (options.verbose) set_log_level(LogLevel::Info);

  graph::Graph g;
  if (options.demo) {
    graph::LfrParams params;
    params.average_degree = 12.0;
    params.communities = 64;
    g = graph::lfr_like(1 << 13, params, 7);
    std::printf("demo graph: LFR |V|=%u |E|=%llu\n", g.num_vertices(),
                static_cast<unsigned long long>(g.num_edges_undirected()));
  } else {
    try {
      g = graph::read_edge_list(options.input_path);
    } catch (const std::exception& error) {
      return fail(api::Status::io_error(options.input_path + ": " +
                                        error.what()));
    }
    std::printf("loaded %s: |V|=%u |E|=%llu\n", options.input_path.c_str(),
                g.num_vertices(),
                static_cast<unsigned long long>(g.num_edges_undirected()));
  }

  api::LoggingProgressObserver logger;
  api::ProgressObserver* observer = options.verbose ? &logger : nullptr;

  // --trace-out: profile the whole run as ONE trace (sample rate 1) and
  // install it for the pipeline — the trainer's TRACE_SPANs and the
  // observer's level spans all land in it.
  trace::Tracer& tracer = trace::Tracer::global();
  std::shared_ptr<trace::Trace> profile;
  TracingProgressObserver tracing_observer(observer);
  if (!options.trace_out.empty()) {
    trace::TraceOptions knobs;
    knobs.sample_rate = 1.0;
    tracer.configure(knobs);
    profile = tracer.begin(trace::mint_request_id());
    if (profile != nullptr) profile->set_label("gosh_embed");
    observer = &tracing_observer;
  }
  trace::ScopedTrace profile_scope(profile);

  // One pipeline run, whatever the mode: with --eval it embeds the train
  // split and that same embedding is evaluated AND written (the seed tool
  // used to train twice — once for the metric, once for the output).
  api::EmbedResult result;
  if (options.run_eval) {
    const auto split = graph::split_for_link_prediction(g, {.seed = 1});
    auto embedded = api::embed(split.train, options, observer);
    if (!embedded.ok()) return fail(embedded.status());
    result = std::move(embedded).value();
    const auto report =
        eval::evaluate_link_prediction(result.embedding, split);
    std::printf("link prediction: AUCROC %.2f%% (embedding %.2f s)\n",
                100.0 * report.auc_roc, result.total_seconds);
    std::printf("note: output embeds the 80%% train split "
                "(compacted vertex ids)\n");
  } else {
    auto embedded = api::embed(g, options, observer);
    if (!embedded.ok()) return fail(embedded.status());
    result = std::move(embedded).value();
  }

  std::printf("backend %s: embedded in %.2f s (coarsening %.2f s, "
              "%zu levels)\n",
              result.backend.c_str(), result.total_seconds,
              result.coarsening_seconds, result.levels.size());

  if (profile != nullptr) {
    tracer.finish(profile);
    if (api::Status status =
            trace::write_chrome_json(tracer, options.trace_out);
        !status.is_ok()) {
      std::fprintf(stderr, "warning: %s\n", status.to_string().c_str());
    } else {
      std::printf("wrote %s (%zu spans)\n", options.trace_out.c_str(),
                  profile->spans().size());
    }
  }

  if (api::Status status =
          api::write_embedding(result.embedding, options.output_path,
                               options.output_format, options.rows_per_shard);
      !status.is_ok()) {
    return fail(status);
  }
  std::printf("wrote %s (%s, %u x %u)\n", options.output_path.c_str(),
              options.output_format.c_str(), result.embedding.rows(),
              result.embedding.dim());
  return 0;
}
