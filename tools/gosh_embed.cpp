// gosh_embed — the command-line interface of the library.
//
//   gosh_embed --input edges.txt --output emb.bin [options]
//
// Reads a whitespace edge list (SNAP format, '#' comments), embeds it with
// GOSH on the emulated device, and writes the embedding. Optionally runs
// the link-prediction evaluation pipeline on a held-out split first, which
// is the fastest way to sanity-check quality on a new graph.
//
// Options:
//   --input PATH        edge-list file (required unless --demo)
//   --demo              use a generated LFR demo graph instead of a file
//   --output PATH       embedding output (default: embedding.bin)
//   --format text|binary  output format (default: binary)
//   --preset fast|normal|slow|nocoarse   Table 3 preset (default: normal)
//   --dim D             embedding dimension (default: 128)
//   --epochs E          override the preset's epoch budget
//   --device-mib M      emulated device memory (default: 512)
//   --seed S            RNG seed (default: 42)
//   --eval              run the 80/20 link-prediction evaluation
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "gosh/embedding/gosh.hpp"
#include "gosh/embedding/io.hpp"
#include "gosh/eval/pipeline.hpp"
#include "gosh/graph/generators.hpp"
#include "gosh/graph/io.hpp"
#include "gosh/graph/split.hpp"

namespace {

const char* flag_string(int argc, char** argv, const char* name,
                        const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

long flag_long(int argc, char** argv, const char* name, long fallback) {
  const char* raw = flag_string(argc, argv, name, nullptr);
  return raw == nullptr ? fallback : std::atol(raw);
}

bool flag_present(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

void usage() {
  std::puts(
      "usage: gosh_embed --input edges.txt [--output emb.bin]\n"
      "                  [--format text|binary] [--preset "
      "fast|normal|slow|nocoarse]\n"
      "                  [--dim D] [--epochs E] [--device-mib M] [--seed S]\n"
      "                  [--eval] | --demo");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gosh;

  if (flag_present(argc, argv, "--help")) {
    usage();
    return 0;
  }

  const char* input = flag_string(argc, argv, "--input", nullptr);
  const bool demo = flag_present(argc, argv, "--demo");
  if (input == nullptr && !demo) {
    usage();
    return 1;
  }

  graph::Graph g;
  if (demo) {
    graph::LfrParams params;
    params.average_degree = 12.0;
    params.communities = 64;
    g = graph::lfr_like(1 << 13, params, 7);
    std::printf("demo graph: LFR |V|=%u |E|=%llu\n", g.num_vertices(),
                static_cast<unsigned long long>(g.num_edges_undirected()));
  } else {
    try {
      g = graph::read_edge_list(input);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "error: %s\n", error.what());
      return 1;
    }
    std::printf("loaded %s: |V|=%u |E|=%llu\n", input, g.num_vertices(),
                static_cast<unsigned long long>(g.num_edges_undirected()));
  }

  const std::string preset = flag_string(argc, argv, "--preset", "normal");
  embedding::GoshConfig config;
  if (preset == "fast") config = embedding::gosh_fast();
  else if (preset == "normal") config = embedding::gosh_normal();
  else if (preset == "slow") config = embedding::gosh_slow();
  else if (preset == "nocoarse") config = embedding::gosh_no_coarsening();
  else {
    std::fprintf(stderr, "error: unknown preset '%s'\n", preset.c_str());
    return 1;
  }
  config.train.dim =
      static_cast<unsigned>(flag_long(argc, argv, "--dim", 128));
  config.train.seed =
      static_cast<std::uint64_t>(flag_long(argc, argv, "--seed", 42));
  const long epochs_override = flag_long(argc, argv, "--epochs", -1);
  if (epochs_override > 0) {
    config.total_epochs = static_cast<unsigned>(epochs_override);
  }

  simt::DeviceConfig device_config;
  device_config.memory_bytes =
      static_cast<std::size_t>(flag_long(argc, argv, "--device-mib", 512))
      << 20;
  simt::Device device(device_config);

  if (flag_present(argc, argv, "--eval")) {
    const auto split = graph::split_for_link_prediction(g, {.seed = 1});
    const auto result =
        embedding::gosh_embed(split.train, device, config);
    const auto report =
        eval::evaluate_link_prediction(result.embedding, split);
    std::printf("link prediction: AUCROC %.2f%% (embedding %.2f s)\n",
                100.0 * report.auc_roc, result.total_seconds);
  }

  const auto result = embedding::gosh_embed(g, device, config);
  std::printf("embedded in %.2f s (coarsening %.2f s, %zu levels)\n",
              result.total_seconds, result.coarsening_seconds,
              result.levels.size());

  const std::string output =
      flag_string(argc, argv, "--output", "embedding.bin");
  const std::string format = flag_string(argc, argv, "--format", "binary");
  try {
    if (format == "text") {
      embedding::write_matrix_text(result.embedding, output);
    } else if (format == "binary") {
      embedding::write_matrix_binary(result.embedding, output);
    } else {
      std::fprintf(stderr, "error: unknown format '%s'\n", format.c_str());
      return 1;
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  std::printf("wrote %s (%s, %u x %u)\n", output.c_str(), format.c_str(),
              result.embedding.rows(), result.embedding.dim());
  return 0;
}
