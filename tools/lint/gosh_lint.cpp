// gosh_lint — the project's dependency-free source lint, run as a ctest
// (lint.tree / lint.fixtures) and as a CI job. It enforces invariants the
// compiler cannot see but the codebase relies on:
//
//   raw-sync          Concurrency primitives (std::mutex, std::unique_lock,
//                     std::condition_variable, pthread_*) may appear only in
//                     src/common/sync.hpp. Everything else must go through
//                     the annotated wrappers so Clang Thread Safety Analysis
//                     covers every lock in the tree.
//   unchecked-value   A `.value()` call must share a function scope with an
//                     ok()/status()/has_value() check (or a gtest assertion)
//                     — Result<T>::value() on an error is undefined.
//   internal-include  tools/, bench/ and examples/ speak the public API
//                     (gosh/api, gosh/query/engine.hpp); reaching into the
//                     strategy internals (query/brute_force.hpp,
//                     query/hnsw.hpp) bypasses the registry.
//   tsan-suppression  Every symbol named in .tsan-suppressions must still
//                     exist in src/ — a stale entry silently widens what the
//                     race-detector job ignores.
//   trace-clock       Serving hot paths (src/net/, src/serving/,
//                     src/cache/) time work with gosh::trace (now_ns() /
//                     Span), not raw std::chrono::steady_clock::now() —
//                     one clock shim keeps span timestamps and ad-hoc
//                     timings on the same epoch. The token-bucket refill
//                     in rate_limiter.cpp is the one justified exception.
//
// Each rule carries an explicit allowlist next to its implementation; the
// fixture tree under tools/lint/fixtures plants one violation per rule and
// --self-test asserts each fires exactly where expected (and nowhere else).
//
//   gosh_lint --root REPO             lint the real tree (exit 1 on findings)
//   gosh_lint --self-test --root DIR  run the fixture expectations
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string file;  // root-relative, '/'-separated
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct SourceFile {
  std::string path;      // root-relative
  std::string text;      // raw contents
  std::string stripped;  // comments and string literals blanked, same length
};

/// Blanks comments and string/char literals (raw strings included) with
/// spaces, preserving every newline so byte offsets map to line numbers.
std::string strip_comments_and_strings(const std::string& text) {
  std::string out = text;
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  std::string raw_delim;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   text[i - 1])) &&
                               text[i - 1] != '_'))) {
          const std::size_t paren = text.find('(', i + 2);
          if (paren != std::string::npos) {
            raw_delim = ")" + text.substr(i + 2, paren - i - 2) + "\"";
            for (std::size_t j = i; j <= paren; ++j) out[j] = ' ';
            i = paren;
            state = State::kRaw;
          }
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == quote) {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
      case State::kRaw:
        if (text.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t j = 0; j < raw_delim.size(); ++j) out[i + j] = ' ';
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::size_t line_of(const std::string& text, std::size_t pos) {
  return 1 + static_cast<std::size_t>(
                 std::count(text.begin(), text.begin() + static_cast<long>(pos),
                            '\n'));
}

bool ends_with(const std::string& value, const std::string& suffix) {
  return value.size() >= suffix.size() &&
         value.compare(value.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

bool starts_with(const std::string& value, const std::string& prefix) {
  return value.compare(0, prefix.size(), prefix) == 0;
}

bool allowlisted(const std::string& path,
                 const std::vector<std::string>& allowlist) {
  for (const std::string& entry : allowlist) {
    if (path == entry || ends_with(path, "/" + entry)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Rule: raw-sync
// ---------------------------------------------------------------------------

/// Only the annotated wrapper layer may touch the raw primitives; every
/// other file goes through common::Mutex / common::CondVar so the Clang
/// Thread Safety pass sees the whole locking story.
const std::vector<std::string> kRawSyncAllowlist = {
    "src/common/sync.hpp",
};

const char* const kRawSyncTokens[] = {
    "std::mutex",          "std::timed_mutex",   "std::recursive_mutex",
    "std::shared_mutex",   "std::shared_timed_mutex",
    "std::condition_variable",  // also catches _any
    "std::lock_guard",     "std::unique_lock",   "std::scoped_lock",
    "std::shared_lock",    "pthread_",
};

void check_raw_sync(const SourceFile& file, std::vector<Violation>& out) {
  if (allowlisted(file.path, kRawSyncAllowlist)) return;
  for (const char* token : kRawSyncTokens) {
    const std::string needle(token);
    std::size_t pos = 0;
    while ((pos = file.stripped.find(needle, pos)) != std::string::npos) {
      // Skip identifiers that merely contain the token (e.g. a wrapper
      // method named lock_guard_like); require a non-identifier char after.
      const std::size_t end = pos + needle.size();
      const char after = end < file.stripped.size() ? file.stripped[end] : ' ';
      if (needle.back() == '_' || !(std::isalnum(static_cast<unsigned char>(
                                        after)) ||
                                    after == '_')) {
        out.push_back({file.path, line_of(file.stripped, pos), "raw-sync",
                       "raw '" + needle +
                           "' outside src/common/sync.hpp; use the "
                           "annotated gosh::common wrappers"});
      }
      pos = end;
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: unchecked-value
// ---------------------------------------------------------------------------

/// Files whose .value() calls are guarded by a helper the scope scan cannot
/// see. Keep entries justified.
const std::vector<std::string> kUncheckedValueAllowlist = {
    // Counter::value() / Gauge::value() are relaxed atomic reads on the
    // metrics accumulators, not Result<T> unwraps.
    "src/serving/metrics.cpp",
};

/// Tokens that count as "this scope checked the result before unwrapping".
const char* const kCheckTokens[] = {
    "ok(",        // .ok() / .is_ok() / parsed.ok()
    "status(",    // explicit status inspection
    "has_value(", "value_or", "ASSERT", "EXPECT", "CHECK",
};

/// True if the declaration text introducing a scope makes it a namespace /
/// type body rather than a function (or lambda / control-flow) body.
bool is_type_or_namespace_scope(const std::string& stripped,
                                std::size_t open_brace) {
  // Declaration text: from the previous ';', '{' or '}' up to this '{'.
  std::size_t begin = open_brace;
  while (begin > 0) {
    const char c = stripped[begin - 1];
    if (c == ';' || c == '{' || c == '}') break;
    --begin;
  }
  const std::string decl = stripped.substr(begin, open_brace - begin);
  static const std::regex kTypeKeyword(
      "\\b(namespace|class|struct|union|enum)\\b");
  if (!std::regex_search(decl, kTypeKeyword)) return false;
  // `struct` in a trailing return / parameter does not make the scope a
  // type body if the decl also looks like a function header ") ... {".
  const std::size_t close = decl.rfind(')');
  if (close != std::string::npos) {
    const std::string tail = decl.substr(close + 1);
    static const std::regex kFunctionTail(
        "^\\s*(const|noexcept|override|final|mutable|->\\s*[\\w:<>,& ]+)*\\s*"
        "$");
    if (std::regex_match(tail, kFunctionTail) &&
        decl.find("namespace") == std::string::npos &&
        decl.find("GOSH_") == std::string::npos) {
      return false;
    }
  }
  return true;
}

void check_unchecked_value(const SourceFile& file,
                           std::vector<Violation>& out) {
  if (allowlisted(file.path, kUncheckedValueAllowlist)) return;
  const std::string& text = file.stripped;
  const std::string needle = ".value()";
  // Single pass: maintain the open-brace stack, snapshot it per occurrence.
  std::vector<std::size_t> stack;
  std::vector<std::pair<std::size_t, std::vector<std::size_t>>> occurrences;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '{') {
      stack.push_back(i);
    } else if (text[i] == '}') {
      if (!stack.empty()) stack.pop_back();
    } else if (text.compare(i, needle.size(), needle) == 0) {
      occurrences.emplace_back(i, stack);
    }
  }
  for (const auto& [pos, scopes] : occurrences) {
    // Search region: from the outermost enclosing scope that is still a
    // function-ish body (stop at the first namespace / type body).
    std::size_t region_begin = std::string::npos;
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (is_type_or_namespace_scope(text, *it)) break;
      region_begin = *it;
    }
    if (region_begin == std::string::npos) continue;  // not inside a function
    const std::string region = text.substr(region_begin, pos - region_begin);
    bool checked = false;
    for (const char* token : kCheckTokens) {
      if (region.find(token) != std::string::npos) {
        checked = true;
        break;
      }
    }
    if (!checked) {
      out.push_back({file.path, line_of(text, pos), "unchecked-value",
                     ".value() without an ok()/status()/has_value() check in "
                     "the enclosing function"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: internal-include
// ---------------------------------------------------------------------------

/// Strategy internals the front-ends must not include directly — the
/// registry (serving::make_service / query::QueryEngine) is the API.
const char* const kInternalHeaders[] = {
    "query/brute_force.hpp",
    "query/hnsw.hpp",
};

const std::vector<std::string> kInternalIncludeAllowlist = {};

void check_internal_include(const SourceFile& file,
                            std::vector<Violation>& out) {
  const bool front_end = starts_with(file.path, "tools/") ||
                         starts_with(file.path, "bench/") ||
                         starts_with(file.path, "examples/");
  if (!front_end || allowlisted(file.path, kInternalIncludeAllowlist)) return;
  std::istringstream lines(file.text);
  std::string line;
  std::size_t number = 0;
  while (std::getline(lines, line)) {
    ++number;
    if (line.find("#include") == std::string::npos) continue;
    for (const char* header : kInternalHeaders) {
      if (line.find(header) != std::string::npos) {
        out.push_back({file.path, number, "internal-include",
                       std::string("front-end includes strategy internal '") +
                           header + "'; use the public engine/service API"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: trace-clock
// ---------------------------------------------------------------------------

/// Timing in the serving layers must go through the trace clock shim
/// (gosh::trace::now_ns(), Span, WallTimer) so every duration lands on the
/// same epoch the Chrome trace export uses.
const std::vector<std::string> kTraceClockAllowlist = {
    // The token bucket refills from a monotonic duration delta; it never
    // reports the timestamp, so the shared epoch does not apply.
    "src/net/rate_limiter.cpp",
};

void check_trace_clock(const SourceFile& file, std::vector<Violation>& out) {
  const bool serving_layer = starts_with(file.path, "src/net/") ||
                             starts_with(file.path, "src/serving/") ||
                             starts_with(file.path, "src/cache/");
  if (!serving_layer || allowlisted(file.path, kTraceClockAllowlist)) return;
  const std::string needle = "steady_clock::now";
  std::size_t pos = 0;
  while ((pos = file.stripped.find(needle, pos)) != std::string::npos) {
    out.push_back({file.path, line_of(file.stripped, pos), "trace-clock",
                   "raw steady_clock::now() in a serving hot path; time "
                   "through gosh::trace (now_ns()/Span) so timings share "
                   "the trace epoch"});
    pos += needle.size();
  }
}

// ---------------------------------------------------------------------------
// Rule: tsan-suppression
// ---------------------------------------------------------------------------

std::string glob_to_regex(const std::string& glob) {
  std::string out;
  for (const char c : glob) {
    if (c == '*') {
      out += "\\w*";
    } else if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      out += c;
    } else {
      out += '\\';
      out += c;
    }
  }
  return out;
}

/// Validates that `symbol` (e.g. gosh::simd::*pair_update_*) still names
/// something in src/: some file must declare a namespace ending in the
/// symbol's innermost concrete namespace AND contain a function token
/// matching the final component.
bool suppression_symbol_exists(const std::string& symbol,
                               const std::vector<SourceFile>& files) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  for (std::size_t pos = 0; (pos = symbol.find("::", begin)) !=
                            std::string::npos;
       begin = pos + 2) {
    parts.push_back(symbol.substr(begin, pos - begin));
  }
  parts.push_back(symbol.substr(begin));
  if (parts.empty()) return false;
  const std::string function = parts.back();
  parts.pop_back();
  // Innermost namespace component that is concrete (gosh:: alone is not
  // discriminating; wildcards and anonymous namespaces cannot anchor).
  std::string ns;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    if (*it != "gosh" && it->find('*') == std::string::npos &&
        it->find('(') == std::string::npos && !it->empty()) {
      ns = *it;
      break;
    }
  }
  std::string function_pattern = glob_to_regex(function) + "\\s*\\(";
  if (function.empty() || function.front() != '*') {
    function_pattern = "\\b" + function_pattern;
  }
  const std::regex function_regex(function_pattern);
  const std::regex ns_regex(ns.empty()
                                ? std::string("namespace")
                                : "namespace\\s+[\\w:]*\\b" + ns + "\\b");
  for (const SourceFile& file : files) {
    if (!starts_with(file.path, "src/")) continue;
    if (std::regex_search(file.stripped, function_regex) &&
        std::regex_search(file.stripped, ns_regex)) {
      return true;
    }
  }
  return false;
}

void check_tsan_suppressions(const fs::path& root,
                             const std::vector<SourceFile>& files,
                             std::vector<Violation>& out) {
  const fs::path path = root / ".tsan-suppressions";
  std::ifstream in(path);
  if (!in) return;  // no suppressions file, nothing to validate
  std::string line;
  std::size_t number = 0;
  static const char* const kSymbolKinds[] = {"race:", "thread:", "mutex:",
                                             "deadlock:", "signal:"};
  while (std::getline(in, line)) {
    ++number;
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::string entry = line.substr(first);
    const std::size_t last = entry.find_last_not_of(" \t\r");
    entry = entry.substr(0, last + 1);
    for (const char* kind : kSymbolKinds) {
      if (!starts_with(entry, kind)) continue;
      const std::string symbol = entry.substr(std::string(kind).size());
      if (!suppression_symbol_exists(symbol, files)) {
        out.push_back(
            {".tsan-suppressions", number, "tsan-suppression",
             "suppression '" + entry +
                 "' names no symbol in src/ — stale entries silently widen "
                 "what the race detector ignores"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

bool lintable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc" ||
         ext == ".cu";
}

std::vector<SourceFile> load_tree(const fs::path& root) {
  std::vector<SourceFile> files;
  static const char* const kRoots[] = {"src", "tools", "bench", "examples",
                                       "tests"};
  for (const char* top : kRoots) {
    const fs::path dir = root / top;
    if (!fs::exists(dir)) continue;
    for (auto it = fs::recursive_directory_iterator(dir);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_directory() && it->path().filename() == "fixtures") {
        it.disable_recursion_pending();  // the planted-violation tree
        continue;
      }
      if (!it->is_regular_file() || !lintable(it->path())) continue;
      std::ifstream in(it->path(), std::ios::binary);
      std::ostringstream text;
      text << in.rdbuf();
      SourceFile file;
      file.path = fs::relative(it->path(), root).generic_string();
      file.text = text.str();
      file.stripped = strip_comments_and_strings(file.text);
      files.push_back(std::move(file));
    }
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  return files;
}

std::vector<Violation> run_rules(const fs::path& root,
                                 const std::vector<SourceFile>& files) {
  std::vector<Violation> violations;
  for (const SourceFile& file : files) {
    check_raw_sync(file, violations);
    check_unchecked_value(file, violations);
    check_internal_include(file, violations);
    check_trace_clock(file, violations);
  }
  check_tsan_suppressions(root, files, violations);
  return violations;
}

void print(const std::vector<Violation>& violations) {
  for (const Violation& v : violations) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", v.file.c_str(), v.line,
                 v.rule.c_str(), v.message.c_str());
  }
}

/// Fixture expectations: each rule must fire on its planted violation and
/// stay quiet on the planted near-miss. Exact files, exact counts.
int self_test(const fs::path& root) {
  // The fixture tree keeps its own suppressions and sources; load it as a
  // normal tree (the fixtures/ skip only applies below a lint/ directory,
  // and here fixtures IS the root).
  std::vector<SourceFile> files;
  for (auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file() || !lintable(entry.path())) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    SourceFile file;
    file.path = fs::relative(entry.path(), root).generic_string();
    file.text = text.str();
    file.stripped = strip_comments_and_strings(file.text);
    files.push_back(std::move(file));
  }
  const std::vector<Violation> violations = run_rules(root, files);

  int failures = 0;
  const auto count = [&](const std::string& rule, const std::string& file) {
    return std::count_if(violations.begin(), violations.end(),
                         [&](const Violation& v) {
                           return v.rule == rule && v.file == file;
                         });
  };
  const auto expect = [&](bool condition, const char* what) {
    if (!condition) {
      std::fprintf(stderr, "self-test FAILED: %s\n", what);
      ++failures;
    }
  };

  expect(count("raw-sync", "src/raw_sync.cpp") >= 1,
         "raw-sync must fire on the planted std::mutex");
  expect(count("raw-sync", "src/common/sync.hpp") == 0,
         "raw-sync must honor the sync.hpp allowlist");
  expect(count("unchecked-value", "src/unchecked_value.cpp") == 1,
         "unchecked-value must fire exactly once (planted call only, the "
         "checked call stays quiet)");
  expect(count("internal-include", "tools/internal_include.cpp") == 1,
         "internal-include must fire on the planted hnsw.hpp include");
  expect(count("tsan-suppression", ".tsan-suppressions") == 1,
         "tsan-suppression must flag the stale symbol and accept the real "
         "one");
  expect(count("trace-clock", "src/net/trace_clock.cpp") == 1,
         "trace-clock must fire on the planted steady_clock::now()");
  expect(count("trace-clock", "src/net/rate_limiter.cpp") == 0,
         "trace-clock must honor the rate_limiter.cpp allowlist");
  expect(count("trace-clock", "src/clock_out_of_scope.cpp") == 0,
         "trace-clock must ignore steady_clock outside "
         "src/net|serving|cache/");
  expect(count("raw-sync", "src/cache/semantic_cache.cpp") == 1,
         "raw-sync must fire on the cache fixture's planted std::mutex");
  expect(count("trace-clock", "src/cache/semantic_cache.cpp") == 1,
         "trace-clock must fire on the cache fixture's planted "
         "steady_clock::now()");
  expect(count("raw-sync", "src/serving/remote.cpp") == 1,
         "raw-sync must fire on the serving fixture's planted std::mutex");
  expect(count("trace-clock", "src/serving/remote.cpp") == 1,
         "trace-clock must fire on the serving fixture's planted "
         "steady_clock::now()");
  // Nothing else may fire — a noisy rule is as useless as a silent one.
  const auto expected_total =
      count("raw-sync", "src/raw_sync.cpp") + 1 + 1 + 1 + 1 + 1 + 1 + 1 + 1;
  expect(static_cast<long>(violations.size()) == expected_total,
         "no unexpected violations in the fixture tree");

  if (failures != 0) {
    print(violations);
    return 1;
  }
  std::printf("gosh_lint self-test: all fixture expectations hold (%zu "
              "violations, all planted)\n",
              violations.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  bool fixtures = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--self-test") {
      fixtures = true;
    } else {
      std::fprintf(stderr,
                   "usage: gosh_lint [--self-test] --root DIR\n");
      return 2;
    }
  }
  if (!fs::exists(root)) {
    std::fprintf(stderr, "gosh_lint: no such root: %s\n",
                 root.string().c_str());
    return 2;
  }
  if (fixtures) return self_test(root);

  const std::vector<SourceFile> files = load_tree(root);
  if (files.empty()) {
    // A lint that scans nothing passes vacuously — treat a root with no
    // src//tools//bench//examples//tests sources as a misconfiguration.
    std::fprintf(stderr, "gosh_lint: nothing to scan under %s\n",
                 root.string().c_str());
    return 2;
  }
  const std::vector<Violation> violations = run_rules(root, files);
  if (!violations.empty()) {
    print(violations);
    std::fprintf(stderr, "gosh_lint: %zu violation(s) in %zu files scanned\n",
                 violations.size(), files.size());
    return 1;
  }
  std::printf("gosh_lint: clean (%zu files scanned)\n", files.size());
  return 0;
}
