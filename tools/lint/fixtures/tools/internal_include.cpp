// Planted violation: a front-end reaching into strategy internals.
#include "gosh/query/hnsw.hpp"  // internal-include must fire here

int main() { return 0; }
