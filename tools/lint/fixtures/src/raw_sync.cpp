// Planted violation: raw primitives outside src/common/sync.hpp.
#include <mutex>

namespace gosh::fixture {

std::mutex planted_mutex;  // raw-sync must fire here

void planted_lock() {
  std::lock_guard<std::mutex> lock(planted_mutex);  // and here
}

}  // namespace gosh::fixture
