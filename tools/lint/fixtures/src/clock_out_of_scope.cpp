// Near-miss: steady_clock outside src/net/ and src/serving/ is fine —
// trace-clock scopes to the serving hot paths only (must NOT fire).
#include <chrono>

namespace gosh::fixture {

long long out_of_scope_timing() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace gosh::fixture
