// Planted violation: .value() without a same-function ok()/status() check.

namespace gosh::fixture {

template <typename T>
struct FakeResult {
  bool ok() const { return true; }
  T value() const { return T{}; }
};

int planted_unchecked(const FakeResult<int>& result) {
  return result.value();  // unchecked-value must fire here
}

int checked(const FakeResult<int>& result) {
  if (!result.ok()) return -1;
  return result.value();  // guarded above: must NOT fire
}

}  // namespace gosh::fixture
