// Planted violations proving both serving-layer rules reach src/cache/:
// a raw std::mutex (raw-sync) and a raw steady_clock read (trace-clock).
// The real cache locks through gosh::common::Mutex and times through
// gosh::trace; this fixture is what it must never look like.
#include <chrono>
#include <mutex>

namespace gosh::fixture {

std::mutex planted_cache_mutex;  // raw-sync must fire here

long long planted_cache_timing() {
  // trace-clock must fire here: src/cache/ times through gosh::trace.
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace gosh::fixture
