// Planted violation: raw steady_clock timing inside a serving hot path.
#include <chrono>

namespace gosh::fixture {

long long planted_timing() {
  // trace-clock must fire here: src/net/ times through gosh::trace.
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace gosh::fixture
