// Allowlisted: the token-bucket refill is the one justified raw
// steady_clock use in the serving layers (trace-clock must NOT fire).
#include <chrono>

namespace gosh::fixture {

long long allowlisted_refill_delta() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace gosh::fixture
