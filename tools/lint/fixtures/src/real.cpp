// Defines the real symbol the fixture .tsan-suppressions names, so the
// tsan-suppression rule can prove it accepts live entries.

namespace gosh::fixture {

int real_symbol(int counter) { return counter + 1; }

}  // namespace gosh::fixture
