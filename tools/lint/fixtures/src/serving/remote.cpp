// Fixture: the remote-scatter layer's territory. Plants one raw-sync and
// one trace-clock violation under src/serving/ so the self-test proves
// both rules cover the distributed-serving files (the real remote.cpp
// uses common::Mutex and trace::now_ns()).
#include <chrono>
#include <mutex>

namespace gosh::serving {

struct FakeReplica {
  std::mutex mutex;  // planted: must use the annotated common::Mutex
};

long long fake_deadline_ns() {
  // planted: serving hot paths time through gosh::trace, not chrono
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace gosh::serving
