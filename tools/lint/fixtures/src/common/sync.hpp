// Near-miss: raw primitives in the allowlisted wrapper path must NOT fire.
#pragma once
#include <mutex>

namespace gosh::fixture {

struct Wrapper {
  std::mutex mutex_;  // allowlisted: this is the wrapper layer
};

}  // namespace gosh::fixture
