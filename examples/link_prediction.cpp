// Link prediction — the paper's evaluation task, end to end (Section 4.1),
// driven through the gosh::api facade.
//
//   ./link_prediction [dataset_name] [medium_scale]
//
// Picks a Table 2 synthetic analog (default com-dblp), splits 80/20,
// embeds the train graph with the three GOSH presets plus the NoCoarse
// ablation — the presets are just Options::preset values — and reports
// AUCROC for each: a single-dataset slice of Table 6.
#include <cstdio>
#include <cstring>

#include "gosh/api/api.hpp"

int main(int argc, char** argv) {
  using namespace gosh;

  const char* name = argc > 1 ? argv[1] : "com-dblp";
  const unsigned scale = argc > 2 ? std::atoi(argv[2]) : 13;

  const auto spec = graph::find_dataset(name, scale, scale + 3);
  std::printf("dataset %s (paper: |V|=%llu |E|=%llu), synthetic analog 2^%u\n",
              spec.name.c_str(),
              static_cast<unsigned long long>(spec.paper_vertices),
              static_cast<unsigned long long>(spec.paper_edges),
              spec.vertex_scale);
  const graph::Graph g = graph::generate_dataset(spec);
  const auto split = graph::split_for_link_prediction(g, {.seed = 1});
  std::printf("train: |V|=%u |E|=%llu   test edges: %zu\n",
              split.train.num_vertices(),
              static_cast<unsigned long long>(
                  split.train.num_edges_undirected()),
              split.test_edges.size());

  const struct {
    const char* label;
    const char* preset;
  } rows[] = {
      {"Gosh-fast", "fast"},
      {"Gosh-normal", "normal"},
      {"Gosh-slow", "slow"},
      {"Gosh-NoCoarse", "nocoarse"},
  };

  std::printf("\n%-14s %10s %10s\n", "config", "time(s)", "AUCROC");
  for (const auto& row : rows) {
    api::Options options;
    if (api::Status status = options.set("preset", row.preset);
        !status.is_ok()) {
      std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
      return 1;
    }
    options.train().dim = 64;
    options.device.memory_bytes = 512u << 20;

    auto embedded = api::embed(split.train, options);
    if (!embedded.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   embedded.status().to_string().c_str());
      return 1;
    }
    const auto report =
        eval::evaluate_link_prediction(embedded.value().embedding, split);
    std::printf("%-14s %10.2f %9.2f%%\n", row.label,
                embedded.value().total_seconds, 100.0 * report.auc_roc);
  }
  return 0;
}
