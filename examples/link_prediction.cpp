// Link prediction — the paper's evaluation task, end to end (Section 4.1).
//
//   ./link_prediction [dataset_name] [medium_scale]
//
// Picks a Table 2 synthetic analog (default com-dblp), splits 80/20,
// embeds the train graph with the three GOSH presets, and reports AUCROC
// for each — a single-dataset slice of Table 6.
#include <cstdio>
#include <cstring>

#include "gosh/embedding/gosh.hpp"
#include "gosh/eval/pipeline.hpp"
#include "gosh/graph/datasets.hpp"
#include "gosh/graph/split.hpp"

int main(int argc, char** argv) {
  using namespace gosh;

  const char* name = argc > 1 ? argv[1] : "com-dblp";
  const unsigned scale = argc > 2 ? std::atoi(argv[2]) : 13;

  const auto spec = graph::find_dataset(name, scale, scale + 3);
  std::printf("dataset %s (paper: |V|=%llu |E|=%llu), synthetic analog 2^%u\n",
              spec.name.c_str(),
              static_cast<unsigned long long>(spec.paper_vertices),
              static_cast<unsigned long long>(spec.paper_edges),
              spec.vertex_scale);
  const graph::Graph g = graph::generate_dataset(spec);
  const auto split = graph::split_for_link_prediction(g, {.seed = 1});
  std::printf("train: |V|=%u |E|=%llu   test edges: %zu\n",
              split.train.num_vertices(),
              static_cast<unsigned long long>(
                  split.train.num_edges_undirected()),
              split.test_edges.size());

  simt::DeviceConfig device_config;
  device_config.memory_bytes = 512u << 20;
  simt::Device device(device_config);

  struct Row {
    const char* label;
    embedding::GoshConfig config;
  };
  const Row rows[] = {
      {"Gosh-fast", embedding::gosh_fast()},
      {"Gosh-normal", embedding::gosh_normal()},
      {"Gosh-slow", embedding::gosh_slow()},
      {"Gosh-NoCoarse", embedding::gosh_no_coarsening()},
  };

  std::printf("\n%-14s %10s %10s\n", "config", "time(s)", "AUCROC");
  for (const Row& row : rows) {
    embedding::GoshConfig config = row.config;
    config.train.dim = 64;
    const auto result = embedding::gosh_embed(split.train, device, config);
    const auto report =
        eval::evaluate_link_prediction(result.embedding, split);
    std::printf("%-14s %10.2f %9.2f%%\n", row.label, result.total_seconds,
                100.0 * report.auc_roc);
  }
  return 0;
}
