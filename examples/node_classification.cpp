// Node classification — the paper's future-work ML task, implemented as an
// extension on the gosh::api facade: embed a planted-community graph, then
// classify community membership from the embedding with one-vs-rest
// logistic regression.
//
//   ./node_classification [communities] [per_community]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "gosh/api/api.hpp"

int main(int argc, char** argv) {
  using namespace gosh;

  const unsigned communities = argc > 1 ? std::atoi(argv[1]) : 4;
  const vid_t per_community = argc > 2 ? std::atoi(argv[2]) : 200;
  const vid_t n = communities * per_community;

  // Planted partition: dense inside a community, sparse across.
  Rng rng(5);
  std::vector<graph::Edge> edges;
  std::vector<unsigned> labels(n);
  for (vid_t v = 0; v < n; ++v) labels[v] = v / per_community;
  for (vid_t u = 0; u < n; ++u) {
    for (int attempt = 0; attempt < 12; ++attempt) {
      const vid_t v = rng.next_vertex(n);
      if (u == v) continue;
      const bool same = labels[u] == labels[v];
      const double p = same ? 0.8 : 0.02;
      if (rng.next_double() < p) edges.emplace_back(u, v);
    }
  }
  const graph::Graph g = graph::build_csr(n, std::move(edges));
  std::printf("planted graph: %u communities x %u vertices, |E|=%llu\n",
              communities, per_community,
              static_cast<unsigned long long>(g.num_edges_undirected()));

  api::Options options;
  options.device.memory_bytes = 256u << 20;
  options.train().dim = 32;
  options.gosh.total_epochs = 400;

  auto embedded = api::embed(g, options);
  if (!embedded.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 embedded.status().to_string().c_str());
    return 1;
  }
  std::printf("embedding took %.2f s (backend %s)\n",
              embedded.value().total_seconds,
              embedded.value().backend.c_str());

  const auto report = eval::evaluate_node_classification(
      embedded.value().embedding, labels);
  std::printf("node classification: %zu classes, accuracy %.2f%%, "
              "micro-F1 %.2f%%\n",
              report.classes, 100.0 * report.accuracy,
              100.0 * report.micro_f1);
  return 0;
}
