// Large-graph embedding: the Algorithm 5 path, forced by a small device.
//
//   ./large_graph [rmat_scale] [device_mib]
//
// The embedding matrix is sized to exceed the device memory cap, so GOSH
// partitions it and trains in rotations with host-side sample pools —
// exactly what the paper does for 65M-vertex graphs on a 12 GB card.
#include <cstdio>
#include <cstdlib>

#include "gosh/embedding/gosh.hpp"
#include "gosh/graph/generators.hpp"
#include "gosh/largegraph/partition.hpp"

int main(int argc, char** argv) {
  using namespace gosh;

  const unsigned scale = argc > 1 ? std::atoi(argv[1]) : 14;
  const std::size_t device_mib = argc > 2 ? std::atoll(argv[2]) : 2;

  graph::LfrParams params;
  params.average_degree = 16.0;
  params.communities = (1u << scale) / 64;
  const graph::Graph g = graph::lfr_like(1u << scale, params, 3);
  const unsigned dim = 64;
  const std::size_t matrix_bytes =
      embedding::EmbeddingMatrix::bytes_for(g.num_vertices(), dim);

  std::printf("graph: |V|=%u |E|=%llu\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges_undirected()));
  std::printf("matrix: %zu KiB, device: %zu KiB => %s\n", matrix_bytes >> 10,
              (device_mib << 20) >> 10,
              matrix_bytes > (device_mib << 20) ? "PARTITIONED PATH"
                                                : "fits (increase scale)");

  simt::DeviceConfig device_config;
  device_config.memory_bytes = device_mib << 20;
  simt::Device device(device_config);

  embedding::GoshConfig config = embedding::gosh_normal(/*large_scale=*/true);
  config.train.dim = dim;

  const auto result = embedding::gosh_embed(g, device, config);

  std::printf("\nlevels:\n");
  for (std::size_t i = 0; i < result.levels.size(); ++i) {
    const auto& level = result.levels[i];
    std::printf("  level %zu: |V|=%8u epochs=%3u %7.2f s  %s\n", i,
                level.vertices, level.epochs, level.train_seconds,
                level.used_large_graph_path ? "[Algorithm 5]" : "[resident]");
  }
  const auto metrics = device.metrics().snapshot();
  std::printf("\ndevice traffic: H2D %.1f MiB, D2H %.1f MiB, %llu kernels\n",
              metrics.h2d_bytes / 1048576.0, metrics.d2h_bytes / 1048576.0,
              static_cast<unsigned long long>(metrics.kernels_launched));
  std::printf("total: %.2f s (coarsening %.2f s)\n", result.total_seconds,
              result.coarsening_seconds);
  return 0;
}
