// Large-graph embedding: the Algorithm 5 path, forced by a small device.
//
//   ./large_graph [rmat_scale] [device_mib]
//
// The embedding matrix is sized to exceed the device memory cap, so the
// facade's auto policy routes the run to the "largegraph" backend — the
// partitioned rotations with host-side sample pools the paper uses for
// 65M-vertex graphs on a 12 GB card.
#include <cstdio>
#include <cstdlib>

#include "gosh/api/api.hpp"

int main(int argc, char** argv) {
  using namespace gosh;

  const unsigned scale = argc > 1 ? std::atoi(argv[1]) : 14;
  const std::size_t device_mib = argc > 2 ? std::atoll(argv[2]) : 2;

  graph::LfrParams params;
  params.average_degree = 16.0;
  params.communities = (1u << scale) / 64;
  const graph::Graph g = graph::lfr_like(1u << scale, params, 3);
  const unsigned dim = 64;
  const std::size_t matrix_bytes =
      embedding::EmbeddingMatrix::bytes_for(g.num_vertices(), dim);

  api::Options options;
  // set() re-derives the preset epoch budgets for the large-scale regime.
  if (api::Status status = options.set("large-scale", "true");
      !status.is_ok()) {
    std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
    return 1;
  }
  options.train().dim = dim;
  options.device.memory_bytes = device_mib << 20;

  const std::string selected = api::select_backend(options, g);
  std::printf("graph: |V|=%u |E|=%llu\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges_undirected()));
  std::printf("matrix: %zu KiB, device: %zu KiB => backend \"%s\"%s\n",
              matrix_bytes >> 10, (device_mib << 20) >> 10, selected.c_str(),
              selected == "largegraph" ? "" : " (increase scale)");

  auto embedded = api::embed(g, options);
  if (!embedded.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 embedded.status().to_string().c_str());
    return 1;
  }
  const api::EmbedResult& result = embedded.value();

  std::printf("\nlevels:\n");
  for (std::size_t i = 0; i < result.levels.size(); ++i) {
    const auto& level = result.levels[i];
    std::printf("  level %zu: |V|=%8u epochs=%3u %7.2f s  %s\n", i,
                level.vertices, level.epochs, level.train_seconds,
                level.used_large_graph_path ? "[Algorithm 5]" : "[resident]");
  }
  std::printf("\ntotal: %.2f s (coarsening %.2f s) via backend %s\n",
              result.total_seconds, result.coarsening_seconds,
              result.backend.c_str());
  return 0;
}
