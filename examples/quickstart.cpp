// Quickstart: generate a graph, embed it through the gosh::api facade,
// inspect the result.
//
//   ./quickstart [rmat_scale] [edges]
//
// Demonstrates the minimal public surface: one include, an Options struct,
// and gosh::api::embed() — the backend (resident device vs partitioned
// large-graph engine) is auto-selected by the fits-in-memory policy.
#include <cstdio>
#include <cstdlib>

#include "gosh/api/api.hpp"

int main(int argc, char** argv) {
  using namespace gosh;

  const unsigned scale = argc > 1 ? std::atoi(argv[1]) : 12;
  const eid_t edges = argc > 2 ? std::atoll(argv[2]) : 50000;

  std::printf("generating RMAT graph: 2^%u vertices, %llu edge samples\n",
              scale, static_cast<unsigned long long>(edges));
  const graph::Graph g = graph::rmat(scale, edges, /*seed=*/1);
  std::printf("graph: |V| = %u, |E| = %llu (undirected), avg degree %.2f\n",
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges_undirected()),
              g.average_degree());

  api::Options options;
  options.device.memory_bytes = 256u << 20;  // the emulated "GPU"
  options.train().dim = 64;
  options.gosh.total_epochs = 200;

  auto embedded = api::embed(g, options);
  if (!embedded.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 embedded.status().to_string().c_str());
    return 1;
  }
  const api::EmbedResult result = std::move(embedded).value();

  std::printf("\nbackend %s, coarsening: %.3f s, %zu levels\n",
              result.backend.c_str(), result.coarsening_seconds,
              result.levels.size());
  for (std::size_t i = 0; i < result.levels.size(); ++i) {
    const auto& level = result.levels[i];
    std::printf("  level %zu: |V| = %8u  epochs = %4u  %.3f s%s\n", i,
                level.vertices, level.epochs, level.train_seconds,
                level.used_large_graph_path ? "  [partitioned]" : "");
  }
  std::printf("training: %.3f s, total: %.3f s\n", result.training_seconds,
              result.total_seconds);

  // Show that neighbours embed closer than random pairs.
  const auto& m = result.embedding;
  double neighbor_sim = 0.0, random_sim = 0.0;
  std::size_t pairs = 0;
  Rng rng(7);
  for (vid_t v = 0; v < g.num_vertices() && pairs < 10000; ++v) {
    const auto nb = g.neighbors(v);
    if (nb.empty()) continue;
    const vid_t u = nb[rng.next_bounded(nb.size())];
    const vid_t r = rng.next_vertex(g.num_vertices());
    neighbor_sim += embedding::dot(m.row(v).data(), m.row(u).data(), m.dim());
    random_sim += embedding::dot(m.row(v).data(), m.row(r).data(), m.dim());
    ++pairs;
  }
  std::printf("\nmean similarity: neighbours %.4f vs random pairs %.4f\n",
              neighbor_sim / pairs, random_sim / pairs);
  std::printf("(a trained embedding puts neighbours much closer)\n");
  return 0;
}
