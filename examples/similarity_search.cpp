// Similarity search: train an embedding through the gosh::api facade,
// persist it into an mmap-served GSHS store, then answer KNN queries with
// both serving strategies — the full train -> store -> serve pipeline in
// one file.
//
//   ./similarity_search [vertices] [store_path]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "gosh/api/api.hpp"

int main(int argc, char** argv) {
  using namespace gosh;

  const vid_t n = argc > 1 ? static_cast<vid_t>(std::atoi(argv[1])) : 2000;
  const std::string store_path =
      argc > 2 ? argv[2] : "similarity_search.store";

  // 1. Train. An LFR graph has planted communities, so nearest neighbors
  // in embedding space should land in the query vertex's own community.
  graph::LfrParams params;
  params.communities = 24;
  const graph::Graph g = graph::lfr_like(n, params, /*seed=*/5);
  std::printf("graph: |V|=%u |E|=%llu\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges_undirected()));

  api::Options options;
  options.preset = "fast";
  options.train().dim = 48;
  options.gosh.total_epochs = 300;
  auto embedded = api::embed(g, options);
  if (!embedded.ok()) {
    std::fprintf(stderr, "error: %s\n", embedded.status().to_string().c_str());
    return 1;
  }
  std::printf("embedded in %.2f s (backend %s)\n",
              embedded.value().total_seconds,
              embedded.value().backend.c_str());

  // 2. Persist into a sharded store and reopen it via mmap — from here on
  // nothing touches the in-memory matrix.
  if (api::Status status = store::EmbeddingStore::write(
          embedded.value().embedding, store_path, {.rows_per_shard = n / 3});
      !status.is_ok()) {
    std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
    return 1;
  }
  auto opened = store::EmbeddingStore::open(store_path);
  if (!opened.ok()) {
    std::fprintf(stderr, "error: %s\n", opened.status().to_string().c_str());
    return 1;
  }
  std::printf("store %s: %u x %u in %zu shards\n", store_path.c_str(),
              opened.value().rows(), opened.value().dim(),
              opened.value().num_shards());

  // 3. Serve: exact scan vs the HNSW index, side by side.
  query::QueryEngine engine(std::move(opened).value(), {});
  if (api::Status status = engine.build_index({.ef_construction = 128});
      !status.is_ok()) {
    std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
    return 1;
  }

  Rng rng(11);
  for (int i = 0; i < 3; ++i) {
    const vid_t v = rng.next_vertex(engine.rows());
    for (const auto strategy :
         {query::Strategy::kExact, query::Strategy::kHnsw}) {
      auto top = engine.top_k_vertex(v, 5, strategy);
      if (!top.ok()) {
        std::fprintf(stderr, "error: %s\n", top.status().to_string().c_str());
        return 1;
      }
      std::printf("vertex %5u (%5s):", v,
                  std::string(query::strategy_name(strategy)).c_str());
      // How many of the returned neighbors are actual graph neighbors?
      const auto adjacent = g.neighbors(v);
      unsigned direct = 0;
      for (const query::Neighbor& nb : top.value()) {
        for (const vid_t u : adjacent) direct += (u == nb.id);
        std::printf(" %u:%.3f", nb.id, nb.score);
      }
      std::printf("   [%u/5 are graph neighbors]\n", direct);
    }
  }
  return 0;
}
