// Similarity search: train an embedding through the gosh::api facade,
// persist it into a sharded mmap-served GSHS store, then answer KNN
// queries through the gosh::serving service API — the full
// train -> store -> serve pipeline in one file, with every strategy
// created from the ServiceRegistry ("exact", "hnsw", the sharded
// "router") answering the same QueryRequest model.
//
//   ./similarity_search [vertices] [store_path]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "gosh/api/api.hpp"

int main(int argc, char** argv) {
  using namespace gosh;

  const vid_t n = argc > 1 ? static_cast<vid_t>(std::atoi(argv[1])) : 2000;
  const std::string store_path =
      argc > 2 ? argv[2] : "similarity_search.store";

  // 1. Train. An LFR graph has planted communities, so nearest neighbors
  // in embedding space should land in the query vertex's own community.
  graph::LfrParams params;
  params.communities = 24;
  const graph::Graph g = graph::lfr_like(n, params, /*seed=*/5);
  std::printf("graph: |V|=%u |E|=%llu\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges_undirected()));

  api::Options options;
  options.preset = "fast";
  options.train().dim = 48;
  options.gosh.total_epochs = 300;
  auto embedded = api::embed(g, options);
  if (!embedded.ok()) {
    std::fprintf(stderr, "error: %s\n", embedded.status().to_string().c_str());
    return 1;
  }
  std::printf("embedded in %.2f s (backend %s)\n",
              embedded.value().total_seconds,
              embedded.value().backend.c_str());

  // 2. Persist into a 3-shard store — the layout the router strategy
  // opens as one engine per shard — and build the HNSW index beside it.
  if (api::Status status = api::write_embedding(
          embedded.value().embedding, store_path, "store",
          /*rows_per_shard=*/n / 3 + 1);
      !status.is_ok()) {
    std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
    return 1;
  }

  serving::ServeOptions serve;
  serve.store_path = store_path;
  serve.k = 5;
  serve.ef_construction = 128;
  auto built = serving::build_index(serve);
  if (!built.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 built.status().to_string().c_str());
    return 1;
  }
  std::printf("store %s + index %s (max level %d)\n", store_path.c_str(),
              built.value().path.c_str(), built.value().max_level);

  // 3. Serve: every strategy is a registry key answering the same request
  // model, with per-request metrics flowing into one registry.
  serving::MetricsRegistry metrics;
  Rng rng(11);
  for (int i = 0; i < 3; ++i) {
    const vid_t v = rng.next_vertex(n);
    for (const char* strategy : {"exact", "hnsw", "router"}) {
      serve.strategy = strategy;
      auto service = serving::make_service(serve, &metrics);
      if (!service.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     service.status().to_string().c_str());
        return 1;
      }
      auto top = service.value()->top_k_vertex(v, 5);
      if (!top.ok()) {
        std::fprintf(stderr, "error: %s\n", top.status().to_string().c_str());
        return 1;
      }
      std::printf("vertex %5u (%7s):", v, strategy);
      // How many of the returned neighbors are actual graph neighbors?
      const auto adjacent = g.neighbors(v);
      unsigned direct = 0;
      for (const query::Neighbor& nb : top.value()) {
        for (const vid_t u : adjacent) direct += (u == nb.id);
        std::printf(" %u:%.3f", nb.id, nb.score);
      }
      std::printf("   [%u/5 are graph neighbors]\n", direct);
    }
  }

  // 4. One multi-vector, filtered request: "similar to BOTH of these
  // vertices, answered only from the first half of the id space".
  serve.strategy = "exact";
  auto service = serving::make_service(serve, &metrics);
  if (!service.ok()) {
    std::fprintf(stderr, "error: %s\n", service.status().to_string().c_str());
    return 1;
  }
  const vid_t a = rng.next_vertex(n), b = rng.next_vertex(n);
  auto va = service.value()->row_vector(a);
  auto vb = service.value()->row_vector(b);
  if (!va.ok() || !vb.ok()) return 1;
  std::vector<float> joint = std::move(va).value();
  const std::vector<float> second = std::move(vb).value();
  joint.insert(joint.end(), second.begin(), second.end());

  serving::QueryRequest request;
  request.queries.push_back(serving::Query::multi(std::move(joint), 2));
  request.aggregate = serving::Aggregate::kMean;
  request.filter = [n](vid_t id) { return id < n / 2; };
  auto response = service.value()->serve(request);
  if (!response.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 response.status().to_string().c_str());
    return 1;
  }
  std::printf("multi-vector mean(%u, %u), ids < %u:", a, b, n / 2);
  for (const query::Neighbor& nb : response.value().results.front()) {
    std::printf(" %u:%.3f", nb.id, nb.score);
  }
  std::printf("\n");
  return 0;
}
